"""Hypothesis property tests for mapping operations and coordinates."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.mapping import (
    ball_query_indices,
    farthest_point_sampling,
    kernel_map_hash,
    kernel_map_mergesort,
    knn_indices,
)
from repro.pointcloud.coords import (
    coords_to_keys,
    keys_to_coords,
    pairwise_squared_distance,
    quantize,
    unique_coords,
)

coord_arrays = hnp.arrays(
    np.int64, st.tuples(st.integers(1, 40), st.just(3)),
    elements=st.integers(-30, 30),
)
# Coordinates rounded to a 1e-3 grid: squared distances of distinct points
# stay comfortably above float underflow (the reference FPS, like the
# hardware, cannot separate points whose squared distance underflows).
point_arrays = hnp.arrays(
    np.float64, st.tuples(st.integers(1, 60), st.just(3)),
    elements=st.floats(-10, 10, allow_nan=False).map(lambda v: round(v, 3)),
)


@given(coords=coord_arrays)
@settings(max_examples=60, deadline=None)
def test_key_roundtrip_and_order(coords):
    keys = coords_to_keys(coords)
    assert np.array_equal(keys_to_coords(keys, 3), coords)
    order_by_key = np.argsort(keys, kind="stable")
    assert coords[order_by_key].tolist() == sorted(coords.tolist())


@given(coords=coord_arrays, stride=st.sampled_from([1, 2, 4, 8]))
@settings(max_examples=60, deadline=None)
def test_quantize_divisible_and_idempotent(coords, stride):
    q = quantize(coords, stride)
    assert np.all(q % stride == 0)
    assert np.array_equal(quantize(q, stride), q)
    # floor semantics: q <= p < q + stride
    assert np.all(q <= coords)
    assert np.all(coords < q + stride)


@given(coords=coord_arrays, ksize=st.sampled_from([1, 2, 3]))
@settings(max_examples=40, deadline=None)
def test_kernel_map_mergesort_equals_hash(coords, ksize):
    unique, _ = unique_coords(coords)
    out, _ = unique_coords(quantize(unique, 2))
    a = kernel_map_mergesort(unique, out, ksize, 1)
    b = kernel_map_hash(unique, out, ksize, 1)
    assert a.as_set() == b.as_set()
    assert a.kernel_volume == ksize**3


@given(coords=coord_arrays)
@settings(max_examples=40, deadline=None)
def test_submanifold_center_identity(coords):
    unique, _ = unique_coords(coords)
    maps = kernel_map_mergesort(unique, unique, 3, 1)
    center = maps.weight_idx == 13
    assert np.array_equal(maps.in_idx[center], maps.out_idx[center])
    assert center.sum() == len(unique)


@given(points=point_arrays, m=st.integers(1, 20))
@settings(max_examples=40, deadline=None)
def test_fps_unique_and_greedy(points, m):
    m = min(m, len(points))
    idx = farthest_point_sampling(points, m)
    # No duplicates unless the cloud itself has duplicate points.
    unique_pts = len({tuple(p) for p in points[idx].tolist()})
    distinct_cloud = len({tuple(p) for p in points.tolist()})
    assert unique_pts == min(m, distinct_cloud)


@given(points=point_arrays, k=st.integers(1, 10))
@settings(max_examples=40, deadline=None)
def test_knn_distances_sorted_and_minimal(points, k):
    queries = points[: min(5, len(points))]
    idx, dist = knn_indices(queries, points, k)
    # Real columns ascend; padding repeats the nearest neighbor, so only
    # the first k_eff columns carry the ordering guarantee.
    k_eff = min(k, len(points))
    assert np.all(np.diff(dist[:, :k_eff], axis=1) >= 0)
    sq = pairwise_squared_distance(queries, points)
    # The k-th neighbor's distance equals the k-th smallest true distance.
    kth_true = np.sort(sq, axis=1)[:, k_eff - 1]
    assert np.allclose(dist[:, k_eff - 1], kth_true)


@given(points=point_arrays, k=st.integers(1, 8),
       radius=st.floats(0.1, 5.0, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_ball_query_group_shape(points, k, radius):
    queries = points[: min(4, len(points))]
    idx = ball_query_indices(queries, points, radius, k)
    assert idx.shape == (len(queries), k)
    assert np.all(idx >= 0) and np.all(idx < len(points))
