"""Hypothesis property tests for the MPU sorting machinery."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.mpu import (
    ComparatorArray,
    StreamingMerger,
    bitonic_sort_network,
    mpu_sort,
    mpu_topk,
    sort_cycles,
    streaming_merge_cycles,
    topk_cycles,
)

key_lists = st.lists(st.integers(min_value=-(2**40), max_value=2**40),
                     min_size=0, max_size=120)
widths = st.sampled_from([4, 8, 16, 32, 64])


@given(keys=st.lists(st.integers(-1000, 1000), min_size=2, max_size=64),
       pad=st.sampled_from([2, 4, 8, 16, 64]))
@settings(max_examples=60, deadline=None)
def test_bitonic_sort_equals_numpy(keys, pad):
    if pad < len(keys):
        pad = 1 << int(np.ceil(np.log2(len(keys))))
    arr = ComparatorArray.from_keys(np.array(keys, dtype=np.int64)).pad_to(
        max(pad, 2)
    )
    bitonic_sort_network(arr)
    valid = arr.valid()
    assert valid.keys.tolist() == sorted(keys)


@given(a=key_lists, b=key_lists, width=widths)
@settings(max_examples=80, deadline=None)
def test_streaming_merge_is_sorted_merge(a, b, width):
    a = np.sort(np.array(a, dtype=np.int64))
    b = np.sort(np.array(b, dtype=np.int64))
    merger = StreamingMerger(width)
    merged, stats = merger.merge(
        ComparatorArray(a.copy(), np.arange(len(a))),
        ComparatorArray(b.copy(), np.arange(len(b)) + 10_000),
    )
    assert merged.keys.tolist() == sorted(a.tolist() + b.tolist())
    assert stats.cycles == streaming_merge_cycles(len(a), len(b), width)
    # Payload conservation: nothing duplicated, nothing lost.
    expect = list(range(len(a))) + [10_000 + i for i in range(len(b))]
    assert sorted(merged.payloads.tolist()) == sorted(expect)


@given(keys=key_lists, width=widths)
@settings(max_examples=60, deadline=None)
def test_mpu_sort_equals_numpy(keys, width):
    keys = np.array(keys, dtype=np.int64)
    out, stats = mpu_sort(ComparatorArray.from_keys(keys), width)
    assert out.keys.tolist() == sorted(keys.tolist())
    assert stats.cycles == sort_cycles(len(keys), width)


@given(keys=st.lists(st.integers(-10_000, 10_000), min_size=1, max_size=150),
       k=st.integers(1, 40), width=widths)
@settings(max_examples=60, deadline=None)
def test_mpu_topk_is_sorted_prefix(keys, k, width):
    keys = np.array(keys, dtype=np.int64)
    out, stats = mpu_topk(ComparatorArray.from_keys(keys), k, width)
    assert out.keys.tolist() == sorted(keys.tolist())[: min(k, len(keys))]
    assert stats.cycles == topk_cycles(len(keys), k, width)
    assert stats.cycles <= sort_cycles(len(keys), width)


@given(n=st.integers(0, 10_000), k=st.integers(1, 128))
@settings(max_examples=60, deadline=None)
def test_topk_cycles_monotone_in_k(n, k):
    assert topk_cycles(n, k, 64) <= topk_cycles(n, k + 16, 64)
