"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.pointcloud import synthetic as S
from repro.pointcloud.datasets import DATASETS, generate_sample, get_dataset


class TestPrimitives:
    def test_box_points_on_surface(self, rng):
        size = np.array([2.0, 3.0, 1.0])
        center = np.array([1.0, -1.0, 0.5])
        pts = S.sample_box_surface(500, size, center, rng)
        rel = np.abs(pts - center) / (size / 2)
        # Every point touches at least one face (max normalized coord == 1).
        assert np.allclose(rel.max(axis=1), 1.0)
        # And stays inside the box on the other axes.
        assert np.all(rel <= 1.0 + 1e-9)

    def test_sphere_points_on_surface(self, rng):
        pts = S.sample_sphere_surface(300, 2.0, np.zeros(3), rng)
        assert np.allclose(np.linalg.norm(pts, axis=1), 2.0)

    def test_cylinder_points_on_surface(self, rng):
        pts = S.sample_cylinder_surface(400, 1.0, 2.0, np.zeros(3), rng)
        r = np.linalg.norm(pts[:, :2], axis=1)
        on_side = np.isclose(r, 1.0)
        on_cap = np.isclose(np.abs(pts[:, 2]), 1.0)
        assert np.all(on_side | on_cap)
        assert np.all(np.abs(pts[:, 2]) <= 1.0 + 1e-9)
        assert np.all(r <= 1.0 + 1e-9)


class TestObjects:
    def test_normalized_to_unit_sphere(self):
        pts = S.make_object_cloud(512, seed=3)
        assert len(pts) == 512
        assert np.linalg.norm(pts, axis=1).max() <= 1.0 + 1e-9

    def test_deterministic(self):
        a = S.make_object_cloud(256, seed=5)
        b = S.make_object_cloud(256, seed=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = S.make_object_cloud(256, seed=1)
        b = S.make_object_cloud(256, seed=2)
        assert not np.array_equal(a, b)


class TestIndoor:
    def test_extent_matches_room(self):
        pts = S.make_indoor_scene(2000, room_size=(8.0, 6.0, 3.0), seed=0)
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        assert np.all(lo > -0.5) and hi[0] < 8.5 and hi[1] < 6.5 and hi[2] < 3.5

    def test_point_count(self):
        assert len(S.make_indoor_scene(1234, seed=1)) == 1234


class TestLidar:
    def test_returns_within_range(self):
        pts = S.make_outdoor_scene(n_beams=16, n_azimuth=128, seed=0)
        ranges = np.linalg.norm(pts, axis=1)
        assert ranges.max() <= 81.0  # max_range + noise
        assert len(pts) > 100

    def test_ground_plane_visible(self):
        pts = S.lidar_scan([], n_beams=32, n_azimuth=256, seed=0)
        # With no obstacles, every return is a ground hit near z=-1.73.
        assert len(pts) > 0
        assert np.all(np.abs(pts[:, 2] + 1.73) < 0.25)

    def test_obstacle_blocks_ground(self):
        # A wall in front of the sensor produces closer returns.
        wall = (np.array([5.0, -10.0, -1.73]), np.array([5.5, 10.0, 3.0]))
        pts = S.lidar_scan([wall], n_beams=16, n_azimuth=64, seed=0)
        forward = pts[(pts[:, 0] > 0) & (np.abs(pts[:, 1]) < 1.0)]
        assert len(forward) > 0
        assert forward[:, 0].min() < 6.0

    def test_density_falls_with_range(self):
        pts = S.make_outdoor_scene(n_beams=32, n_azimuth=512, seed=0)
        ranges = np.linalg.norm(pts[:, :2], axis=1)
        near = np.sum(ranges < 15)
        far = np.sum((ranges > 30) & (ranges < 45))
        assert near > far  # 1/r falloff of a spinning scanner


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_generate_sample(self, name):
        cloud = generate_sample(name, seed=0, n_points=300)
        assert cloud.n == 300
        assert cloud.ndim == 3

    def test_scale_controls_size(self):
        small = generate_sample("modelnet40", seed=0, scale=0.25)
        assert small.n == int(1024 * 0.25)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            get_dataset("imagenet")

    def test_outdoor_density_below_indoor(self):
        from repro.analysis.density import dataset_density

        outdoor = dataset_density("semantickitti", scale=0.2)
        indoor = dataset_density("s3dis", scale=0.2)
        assert outdoor.density < indoor.density
