"""Unit tests for coordinate math (repro.pointcloud.coords)."""

import numpy as np
import pytest

from repro.pointcloud import coords as C


class TestLexicographic:
    def test_order_matches_python_sort(self, rng):
        pts = rng.integers(-50, 50, size=(200, 3))
        order = C.lexicographic_order(pts)
        got = pts[order].tolist()
        assert got == sorted(pts.tolist())

    def test_sort_returns_sorted_rows(self, rng):
        pts = rng.integers(-9, 9, size=(64, 2))
        out = C.lexicographic_sort(pts)
        assert out.tolist() == sorted(pts.tolist())

    def test_first_axis_most_significant(self):
        pts = np.array([[1, 0], [0, 99]])
        out = C.lexicographic_sort(pts)
        assert out[0].tolist() == [0, 99]

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            C.lexicographic_order(np.arange(5))


class TestKeys:
    def test_roundtrip(self, rng):
        pts = rng.integers(-1000, 1000, size=(100, 3))
        keys = C.coords_to_keys(pts)
        back = C.keys_to_coords(keys, 3)
        assert np.array_equal(back, pts)

    def test_keys_preserve_lexicographic_order(self, rng):
        pts = rng.integers(-100, 100, size=(300, 3))
        keys = C.coords_to_keys(pts)
        by_key = pts[np.argsort(keys, kind="stable")]
        assert by_key.tolist() == sorted(pts.tolist())

    def test_unique_coords_unique_keys(self, rng):
        pts = rng.integers(-20, 20, size=(500, 3))
        unique, _ = C.unique_coords(pts)
        keys = C.coords_to_keys(unique)
        assert len(np.unique(keys)) == len(keys)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            C.coords_to_keys(np.array([[2**21, 0, 0]]))

    def test_2d_coords_supported(self):
        pts = np.array([[3, 5], [2, 4], [3, 4]])
        keys = C.coords_to_keys(pts)
        assert np.array_equal(C.keys_to_coords(keys, 2), pts)


class TestQuantize:
    def test_paper_examples(self):
        # Section 2.1.1: (3, 5) at ts=2 -> (2, 4); (4, 8) at ts=8 -> (0, 8).
        assert C.quantize(np.array([[3, 5]]), 2).tolist() == [[2, 4]]
        assert C.quantize(np.array([[4, 8]]), 8).tolist() == [[0, 8]]

    def test_negative_coordinates_floor(self):
        assert C.quantize(np.array([[-1, -2]]), 2).tolist() == [[-2, -2]]
        assert C.quantize(np.array([[-3]]), 4).tolist() == [[-4]]

    def test_identity_at_stride_one(self, rng):
        pts = rng.integers(-50, 50, size=(40, 3))
        assert np.array_equal(C.quantize(pts, 1), pts)

    def test_is_idempotent(self, rng):
        pts = rng.integers(-64, 64, size=(100, 3))
        once = C.quantize(pts, 4)
        assert np.array_equal(C.quantize(once, 4), once)

    def test_equals_bit_clearing_for_power_of_two(self, rng):
        # "implemented on hardware by clearing the lowest log2(ts) bits".
        pts = rng.integers(0, 1024, size=(200, 3))
        assert np.array_equal(C.quantize(pts, 8), pts & ~7)

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            C.quantize(np.zeros((1, 3)), 0)

    def test_quantize_unique_sorted_and_inverse(self, rng):
        pts = rng.integers(-32, 32, size=(300, 3))
        out, inverse = C.quantize_unique(pts, 4)
        assert out.tolist() == sorted(out.tolist())
        assert np.array_equal(out[inverse], C.quantize(pts, 4))


class TestVoxelize:
    def test_inverse_maps_points_to_voxels(self, rng):
        pts = rng.random((200, 3)) * 4
        voxels, inverse = C.voxelize(pts, 0.5)
        expected = np.floor(pts / 0.5).astype(np.int64)
        assert np.array_equal(voxels[inverse], expected)

    def test_voxels_unique(self, rng):
        pts = rng.random((500, 3))
        voxels, _ = C.voxelize(pts, 0.25)
        assert len(np.unique(C.coords_to_keys(voxels))) == len(voxels)

    def test_invalid_voxel_size(self):
        with pytest.raises(ValueError):
            C.voxelize(np.zeros((1, 3)), 0.0)


class TestKernelOffsets:
    def test_k3_d3_is_27_neighborhood(self):
        offs = C.kernel_offsets(3, 3)
        assert offs.shape == (27, 3)
        assert offs.min() == -1 and offs.max() == 1
        assert [0, 0, 0] in offs.tolist()

    def test_k2_covers_positive_octant(self):
        offs = C.kernel_offsets(2, 3)
        assert offs.shape == (8, 3)
        assert offs.min() == 0 and offs.max() == 1

    def test_k1_is_identity(self):
        assert C.kernel_offsets(1, 3).tolist() == [[0, 0, 0]]

    def test_offsets_lexicographically_ordered(self):
        offs = C.kernel_offsets(3, 2)
        assert offs.tolist() == sorted(offs.tolist())

    def test_invalid_kernel(self):
        with pytest.raises(ValueError):
            C.kernel_offsets(0)


class TestDistances:
    def test_pairwise_against_naive(self, rng):
        a = rng.random((20, 3))
        b = rng.random((30, 3))
        got = C.pairwise_squared_distance(a, b)
        naive = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        assert np.allclose(got, naive)

    def test_pairwise_non_negative(self, rng):
        a = rng.random((50, 3)) * 1000  # stress float cancellation
        got = C.pairwise_squared_distance(a, a)
        assert np.all(got >= 0)

    def test_distance_to_set(self, rng):
        pts = rng.random((40, 3))
        ref = rng.random((10, 3))
        got = C.squared_distance_to_set(pts, ref)
        naive = ((pts[:, None, :] - ref[None, :, :]) ** 2).sum(axis=2).min(axis=1)
        assert np.allclose(got, naive)

    def test_bounding_box(self):
        pts = np.array([[0.0, 1.0], [2.0, -1.0]])
        lo, hi = C.bounding_box(pts)
        assert lo.tolist() == [0.0, -1.0]
        assert hi.tolist() == [2.0, 1.0]

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            C.bounding_box(np.empty((0, 3)))
