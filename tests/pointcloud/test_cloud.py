"""Unit tests for PointCloud / SparseTensor containers."""

import numpy as np
import pytest

from repro.pointcloud import PointCloud, SparseTensor
from repro.pointcloud.coords import coords_to_keys


class TestPointCloud:
    def test_basic_properties(self, rng):
        pts = rng.random((10, 3))
        feats = rng.random((10, 4))
        cloud = PointCloud(pts, feats)
        assert cloud.n == 10 and cloud.ndim == 3 and cloud.channels == 4

    def test_no_features(self, rng):
        cloud = PointCloud(rng.random((5, 3)))
        assert cloud.channels == 0 and cloud.features is None

    def test_length_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            PointCloud(rng.random((5, 3)), rng.random((4, 2)))

    def test_select(self, rng):
        cloud = PointCloud(rng.random((10, 3)), rng.random((10, 2)))
        sub = cloud.select(np.array([1, 3, 5]))
        assert sub.n == 3
        assert np.array_equal(sub.points, cloud.points[[1, 3, 5]])
        assert np.array_equal(sub.features, cloud.features[[1, 3, 5]])

    def test_with_features(self, rng):
        cloud = PointCloud(rng.random((6, 3)))
        new = cloud.with_features(rng.random((6, 7)))
        assert new.channels == 7 and cloud.channels == 0

    def test_voxelize_averages_features(self):
        pts = np.array([[0.1, 0.1, 0.1], [0.2, 0.2, 0.2], [1.5, 0.0, 0.0]])
        feats = np.array([[2.0], [4.0], [10.0]])
        tensor = PointCloud(pts, feats).voxelize(1.0)
        assert tensor.n == 2
        # Voxel (0,0,0) holds the first two points, averaged.
        assert sorted(tensor.features.ravel().tolist()) == [3.0, 10.0]


class TestSparseTensor:
    def test_sorts_and_keeps_features_aligned(self, rng):
        coords = np.array([[2, 0, 0], [0, 0, 0], [1, 0, 0]])
        feats = np.array([[2.0], [0.0], [1.0]])
        tensor = SparseTensor(coords, feats)
        assert tensor.coords[:, 0].tolist() == [0, 1, 2]
        assert tensor.features.ravel().tolist() == [0.0, 1.0, 2.0]

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            SparseTensor(np.array([[0, 0, 0], [0, 0, 0]]))

    def test_rejects_unaligned_stride(self):
        with pytest.raises(ValueError):
            SparseTensor(np.array([[1, 0, 0]]), tensor_stride=2)

    def test_keys_sorted(self, voxel_tensor):
        keys = voxel_tensor.keys
        assert np.all(np.diff(keys) > 0)

    def test_downsample_stride_and_uniqueness(self, voxel_tensor):
        down = voxel_tensor.downsample(2)
        assert down.tensor_stride == 2
        assert np.all(down.coords % 2 == 0)
        assert len(np.unique(coords_to_keys(down.coords))) == down.n
        assert down.n <= voxel_tensor.n

    def test_downsample_covers_all_inputs(self, voxel_tensor):
        down = voxel_tensor.downsample(2)
        down_keys = set(coords_to_keys(down.coords).tolist())
        quantized = (voxel_tensor.coords // 2) * 2
        for key in coords_to_keys(quantized).tolist():
            assert key in down_keys

    def test_repeated_downsample_doubles_stride(self, voxel_tensor):
        d4 = voxel_tensor.downsample(2).downsample(2)
        assert d4.tensor_stride == 4
        assert np.all(d4.coords % 4 == 0)

    def test_to_point_cloud(self, voxel_tensor):
        cloud = voxel_tensor.to_point_cloud()
        assert cloud.n == voxel_tensor.n
        assert cloud.channels == voxel_tensor.channels

    def test_with_features_validates_length(self, voxel_tensor):
        with pytest.raises(ValueError):
            voxel_tensor.with_features(np.zeros((voxel_tensor.n + 1, 2)))
