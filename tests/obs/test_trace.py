"""Span/tracer mechanics: nesting, balance, thread-locality, export."""

import json
import threading
import time

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    current_tracer,
    span,
    use_tracer,
)


class TestSpanTree:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("frame") as frame:
                with span("plan"):
                    pass
                with span("execute") as ex:
                    with span("tier_io", tier="L1"):
                        pass
        assert tracer.roots == [frame]
        assert [c.name for c in frame.children] == ["plan", "execute"]
        assert [c.name for c in ex.children] == ["tier_io"]

    def test_durations_are_monotonic_and_nested(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("outer") as outer:
                with span("inner") as inner:
                    time.sleep(0.002)
        assert inner.duration > 0
        assert outer.duration >= inner.duration

    def test_counters_accumulate(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("probe") as sp:
                sp.count("hits", 3)
                sp.count("hits", 2)
        assert sp.counters == {"hits": 5.0}

    def test_attrs_recorded(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("tier_io", tier="MapCache", way="get") as sp:
                pass
        assert sp.attrs == {"tier": "MapCache", "way": "get"}


class TestBalanceUnderExceptions:
    def test_exception_closes_the_span(self):
        """A raising body must still pop the stack and stamp the duration
        — the tree stays well-formed for the dump."""
        tracer = Tracer()
        with use_tracer(tracer):
            with pytest.raises(ValueError):
                with span("frame"):
                    with span("plan"):
                        raise ValueError("boom")
            assert tracer.current() is None  # stack fully unwound
        (frame,) = tracer.roots
        assert frame.duration > 0
        (plan,) = frame.children
        assert plan.duration > 0

    def test_sibling_after_exception_attaches_correctly(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("frame") as frame:
                try:
                    with span("probe"):
                        raise KeyError("miss")
                except KeyError:
                    pass
                with span("execute"):
                    pass
        assert [c.name for c in frame.children] == ["probe", "execute"]


class TestDisabled:
    def test_no_tracer_returns_shared_null_span(self):
        assert current_tracer() is None
        assert span("anything", op="knn") is NULL_SPAN
        assert span("other") is NULL_SPAN  # the same shared object

    def test_null_span_supports_the_span_surface(self):
        with span("x") as sp:
            sp.count("hits", 3)
        assert sp.counters == {}
        assert sp.children == []
        assert sp.duration == 0.0

    def test_disabled_per_call_cost_is_tiny(self):
        """The disabled hook is one global read + one call: bound the
        per-site cost far below anything a frame would notice."""
        n = 50_000
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            for _ in range(n):
                with span("probe", op="knn"):
                    pass
            best = min(best, time.perf_counter() - t0)
        assert best / n < 20e-6  # 20us per disabled site is already absurd


class TestThreads:
    def test_side_thread_spans_do_not_interleave(self):
        tracer = Tracer()
        done = threading.Event()

        def side():
            with tracer.span("side_root"):
                done.wait(1.0)

        with use_tracer(tracer):
            thread = threading.Thread(target=side)
            thread.start()
            time.sleep(0.005)
            with span("main_root") as main_root:
                with span("child"):
                    pass
            done.set()
            thread.join(2.0)
        names = sorted(r.name for r in tracer.roots)
        assert names == ["main_root", "side_root"]
        # The side thread's span never landed under the main thread's tree.
        assert [c.name for c in main_root.children] == ["child"]

    def test_detached_span_attaches_where_the_caller_puts_it(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.detached("trace_build") as built:
                with span("inner"):
                    pass
            assert built not in tracer.roots
            with span("request") as req:
                req.children.insert(0, built)
        assert [c.name for c in req.children] == ["trace_build"]
        assert [c.name for c in built.children] == ["inner"]


class TestExport:
    def test_dump_jsonl_roundtrips(self, tmp_path):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("frame", index=0) as sp:
                sp.count("hits", 2)
                with span("plan"):
                    pass
        path = tmp_path / "trace.jsonl"
        n = tracer.dump_jsonl(str(path))
        assert n == 2
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1  # one root per line
        obj = json.loads(lines[0])
        assert obj["name"] == "frame"
        assert obj["attrs"] == {"index": 0}
        assert obj["counters"] == {"hits": 2.0}
        assert [c["name"] for c in obj["children"]] == ["plan"]
        assert obj["dur_ms"] >= obj["children"][0]["dur_ms"]

    def test_drain_empties_the_root_list(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("a"):
                pass
        roots = tracer.drain()
        assert [r.name for r in roots] == ["a"]
        assert tracer.roots == []

    def test_spans_pickle(self):
        import pickle

        root = Span("request", {"index": 3})
        root.count("hits", 1)
        root.children.append(Span("backend"))
        clone = pickle.loads(pickle.dumps(root))
        assert clone.name == "request"
        assert clone.attrs == {"index": 3}
        assert [c.name for c in clone.children] == ["backend"]
