"""repro.obs.diff: phase alignment, ranking, and slowdown attribution.

The acceptance contract: given a baseline trace and a candidate trace
with a slowdown injected into exactly one phase, ``trace-diff`` must
rank that phase first with the right sign — regression *attribution*,
not just detection.
"""

import json
import time

import pytest

from repro.obs.diff import DIFF_SCHEMA, diff_phases, render_diff, trace_diff
from repro.obs.trace import Tracer, use_tracer
from repro.stream import FrameSequence, SequenceConfig, StreamSession

SCALE = 0.2
CFG = SequenceConfig(seed=3, n_frames=3, speed=2.0, fov=18.0)


def _breakdown(**phases):
    """``phase=(calls, self_ms)`` shorthand for phase_breakdown dicts."""
    return {
        name: {"calls": calls, "total_ms": self_ms, "self_ms": self_ms}
        for name, (calls, self_ms) in phases.items()
    }


class TestDiffPhases:
    def test_ranked_by_abs_delta_with_shares(self):
        rows = diff_phases(
            _breakdown(splice=(10, 10.0), plan=(10, 50.0)),
            _breakdown(splice=(10, 30.0), plan=(10, 55.0)),
        )
        assert [r["phase"] for r in rows] == ["splice", "plan"]
        assert rows[0]["delta_ms"] == pytest.approx(20.0)
        assert rows[0]["delta_pct"] == pytest.approx(200.0)
        assert rows[0]["share"] == pytest.approx(0.8)
        assert rows[1]["share"] == pytest.approx(0.2)

    def test_rate_separates_more_calls_from_slower_calls(self):
        """Doubled self time on doubled calls is a volume change, not a
        per-call slowdown: the ms/call rate delta stays zero."""
        (row,) = diff_phases(
            _breakdown(splice=(10, 10.0)), _breakdown(splice=(20, 20.0))
        )
        assert row["delta_ms"] == pytest.approx(10.0)
        assert row["rate_delta_ms_per_call"] == pytest.approx(0.0)

    def test_phase_new_in_candidate_has_no_pct(self):
        (row,) = diff_phases({}, _breakdown(dispatch=(4, 8.0)))
        assert row["phase"] == "dispatch"
        assert row["delta_pct"] is None
        assert row["baseline_calls"] == 0

    def test_phase_gone_in_candidate_has_negative_delta(self):
        (row,) = diff_phases(_breakdown(ipc=(4, 8.0)), {})
        assert row["delta_ms"] == pytest.approx(-8.0)
        assert row["candidate_calls"] == 0


def _traced_run(tmp_path, name):
    tracer = Tracer()
    with use_tracer(tracer):
        StreamSession(FrameSequence(CFG), "MinkNet(o)", scale=SCALE).run(
            CFG.n_frames)
    path = tmp_path / name
    tracer.dump_jsonl(str(path))
    return str(path)


class TestTraceDiffFiles:
    def test_self_diff_is_zero(self, tmp_path):
        trace = _traced_run(tmp_path, "t.jsonl")
        diff = trace_diff(trace, trace)
        assert diff["schema"] == DIFF_SCHEMA
        assert diff["total_delta_ms"] == pytest.approx(0.0)
        assert diff["top_phase"] is None
        assert diff["verdict"] == "no self-time delta"
        assert all(r["delta_ms"] == 0.0 for r in diff["phases"])

    def test_malformed_lines_skipped_and_counted(self, tmp_path):
        trace = _traced_run(tmp_path, "t.jsonl")
        dirty = tmp_path / "dirty.jsonl"
        dirty.write_text("not json {\n" + open(trace).read() + "[1, 2]\n")
        diff = trace_diff(trace, str(dirty))
        assert diff["candidate"]["skipped_lines"] == 2
        assert diff["candidate"]["roots"] == diff["baseline"]["roots"]

    def test_missing_file_raises_oserror(self, tmp_path):
        trace = _traced_run(tmp_path, "t.jsonl")
        with pytest.raises(OSError):
            trace_diff(trace, str(tmp_path / "missing.jsonl"))

    def test_render_mentions_table_and_verdict(self, tmp_path):
        trace = _traced_run(tmp_path, "t.jsonl")
        out = render_diff(trace_diff(trace, trace))
        assert "phase" in out and "self A ms" in out
        assert "verdict: no self-time delta" in out

    def test_render_empty_traces(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        out = render_diff(trace_diff(str(empty), str(empty)))
        assert "no spans on either side" in out


class TestSlowdownAttribution:
    def test_injected_splice_slowdown_ranks_first(self, tmp_path,
                                                  monkeypatch):
        """~10 ms injected into every kernel-map compose (inside the
        splice span) must surface as: top phase == splice, positive
        delta, and a verdict naming it."""
        baseline = _traced_run(tmp_path, "baseline.jsonl")

        from repro.stream.plan import KernelComposer
        real = KernelComposer.compose

        def slow_compose(self, *args, **kwargs):
            time.sleep(0.010)
            return real(self, *args, **kwargs)

        monkeypatch.setattr(KernelComposer, "compose", slow_compose)
        candidate = _traced_run(tmp_path, "candidate.jsonl")

        diff = trace_diff(baseline, candidate)
        assert diff["top_phase"] == "splice"
        top = diff["phases"][0]
        assert top["delta_ms"] > 0
        assert top["rate_delta_ms_per_call"] > 0
        assert diff["verdict"].startswith("splice self-time +")
        # The injected cost is per-call, not per-volume: call counts on
        # the two sides agree, so the verdict blames the rate.
        assert "on ~same call count" in diff["verdict"]
        # Machine payload survives a JSON round trip for CI archival.
        assert json.loads(json.dumps(diff))["top_phase"] == "splice"
