"""RecomputeLedger unit behaviour: ring bound, aggregates, context."""

import json
import time

import pytest

from repro.obs.ledger import (
    RecomputeLedger,
    TILE_CAUSES,
    current_ledger,
    ledger_frame,
    use_ledger,
)


class TestEvents:
    def test_ring_bound_drops_oldest_but_keeps_totals(self):
        ledger = RecomputeLedger(max_events=4)
        for i in range(6):
            ledger.tile("knn", "recompute(cold)", n=1)
        assert len(ledger.events()) == 4
        assert ledger.dropped == 2
        # Aggregates are exact regardless of the ring wrapping.
        assert ledger.causes["recompute(cold)"] == 6

    def test_tile_strips_op_suffix_and_ignores_empty(self):
        ledger = RecomputeLedger()
        ledger.tile("knn/tile", "l1_hit", n=3)
        ledger.tile("knn/tile", "l1_hit", n=0)
        (event,) = ledger.events()
        assert event["op"] == "knn"
        assert event["n"] == 3

    def test_call_accounting_splits_probe_hits_from_planned(self):
        ledger = RecomputeLedger()
        ledger.call("knn", 0, cause="probe_hit")
        ledger.call("knn", 12)
        assert ledger.calls == 2
        assert ledger.probe_hits == 1
        assert ledger.planned_tiles == 12
        assert ledger.causes["probe_hit"] == 1

    def test_eviction_aggregates_per_tier(self):
        ledger = RecomputeLedger()
        ledger.eviction("memory", "aa", 100)
        ledger.eviction("memory", "bb", 50)
        ledger.eviction("disk", "cc", 999)
        assert ledger.evictions["memory"] == {"count": 2, "bytes": 150}
        assert ledger.evictions["disk"] == {"count": 1, "bytes": 999}

    def test_max_events_must_be_positive(self):
        with pytest.raises(ValueError):
            RecomputeLedger(max_events=0)


class TestSummaryAndDump:
    def test_summary_counts_recomputed_tiles(self):
        ledger = RecomputeLedger()
        ledger.call("knn", 10)
        ledger.tile("knn", "l1_hit", 4)
        ledger.tile("knn", "recompute(cold)", 5)
        ledger.tile("knn", "recompute(halo_moved)", 1)
        ledger.splice("kernel_map/conv", "spliced")
        summary = ledger.summary()
        assert summary["planned_tiles"] == 10
        assert summary["recomputed_tiles"] == 6
        assert summary["causes"]["l1_hit"] == 4
        assert summary["splice"] == {"spliced": 1}
        assert summary["dropped"] == 0

    def test_every_tile_cause_is_summarizable(self):
        ledger = RecomputeLedger()
        for cause in TILE_CAUSES:
            if cause == "probe_hit":
                ledger.call("knn", 0, cause="probe_hit")
            else:
                ledger.tile("knn", cause, 2)
        assert set(ledger.summary()["causes"]) == set(TILE_CAUSES)

    def test_dump_jsonl_one_parseable_object_per_event(self, tmp_path):
        ledger = RecomputeLedger()
        with use_ledger(ledger), ledger_frame("f7"):
            ledger.tile("ball_query", "l2_hit", 2)
            ledger.splice("kernel_map/conv", "full_sort")
        path = tmp_path / "ledger.jsonl"
        assert ledger.dump_jsonl(str(path)) == 2
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert events[0] == {"kind": "tile", "frame": "f7",
                             "op": "ball_query", "cause": "l2_hit", "n": 2}
        assert events[1]["outcome"] == "full_sort"


class TestContext:
    def test_use_ledger_installs_and_nests(self):
        assert current_ledger() is None
        outer, inner = RecomputeLedger(), RecomputeLedger()
        with use_ledger(outer):
            assert current_ledger() is outer
            with use_ledger(inner):
                assert current_ledger() is inner
            assert current_ledger() is outer
        assert current_ledger() is None

    def test_ledger_frame_stamps_and_restores(self):
        ledger = RecomputeLedger()
        with use_ledger(ledger):
            ledger.tile("knn", "l1_hit", 1)
            with ledger_frame("f0"):
                ledger.tile("knn", "l1_hit", 1)
            ledger.tile("knn", "l1_hit", 1)
        frames = [e["frame"] for e in ledger.events()]
        assert frames == [None, "f0", None]

    def test_ledger_frame_is_noop_without_active_ledger(self):
        with ledger_frame("f0"):
            assert current_ledger() is None

    def test_disabled_site_cost_is_negligible(self):
        """The disabled path every emission site pays is one module-global
        read plus a None check; keep it in the same per-site budget the
        span layer holds (a frame crosses tens of sites, a frame is tens
        of milliseconds — microseconds per site would be invisible)."""
        n = 100_000
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            for _ in range(n):
                current_ledger()
            best = min(best, time.perf_counter() - t0)
        assert best / n < 5e-6
