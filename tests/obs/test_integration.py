"""Telemetry across the serving stack: coverage, bit-identity, workers.

The acceptance contract: tracing is observability only — with a tracer
installed the span tree must account for where frame time went (children
sum to within 10% of each frame's measured latency), and results must be
bit-identical to an untraced run.
"""

import time

import pytest

from repro.cluster import EngineCluster
from repro.engine import SimRequest, SimulationEngine
from repro.obs.trace import Tracer, span, use_tracer
from repro.stream import FrameSequence, SequenceConfig, StreamSession

SCALE = 0.2
CFG = SequenceConfig(seed=3, n_frames=4, speed=2.0, fov=18.0)


def _session(**kwargs) -> StreamSession:
    return StreamSession(FrameSequence(CFG), "MinkNet(o)", scale=SCALE,
                         **kwargs)


def _requests(n: int):
    return [SimRequest(benchmark="PointNet++(c)", scale=SCALE, seed=i % 2)
            for i in range(n)]


class TestStreamCoverage:
    def test_frame_phase_durations_cover_frame_latency(self):
        """Per-frame: the span children must sum to within 10% of the
        frame span's own duration — time is attributed, not lost."""
        tracer = Tracer()
        with use_tracer(tracer):
            _session().run(3)
        frames = [r for r in tracer.roots if r.name == "frame"]
        assert len(frames) == 3
        for frame in frames:
            assert frame.duration > 0
            coverage = frame.child_seconds() / frame.duration
            assert 0.9 <= coverage <= 1.0 + 1e-9

    def test_expected_phases_appear(self):
        tracer = Tracer()
        with use_tracer(tracer):
            _session().run(2)
        names = {node.name for root in tracer.roots for node in root.walk()}
        for expected in ("frame", "request", "trace_build", "front", "plan",
                         "probe", "execute", "splice", "tier_io", "backend"):
            assert expected in names, f"missing span {expected!r}"

    def test_tracing_preserves_bit_identity(self):
        """A tracer may change wall-clock only: reports from a traced
        session equal those from an untraced one."""
        untraced = _session().run(3)
        with use_tracer(Tracer()):
            traced = _session().run(3)
        assert len(untraced) == len(traced)
        for a, b in zip(untraced, traced):
            assert a.result.reports == b.result.reports

    def test_disabled_sites_cost_under_2pct_of_a_frame(self):
        """Estimate the disabled-tracer tax on one warm streaming frame:
        (instrumentation sites crossed) x (per-site disabled cost) must
        stay under 2% of the frame's measured wall time."""
        session = _session()
        session.run(2)  # warm the caches; steady-state frames from here
        tracer = Tracer()
        with use_tracer(tracer):
            t0 = time.perf_counter()
            session.run(1)
            frame_wall = time.perf_counter() - t0
        sites = sum(1 for root in tracer.roots for _ in root.walk())
        assert sites > 10  # the frame actually crossed the instrumentation
        n = 20_000
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            for _ in range(n):
                with span("probe", op="knn"):
                    pass
            best = min(best, time.perf_counter() - t0)
        per_site = best / n
        assert sites * per_site < 0.02 * frame_wall


class TestEngineTracing:
    def test_engine_batch_bit_identity(self):
        baseline = SimulationEngine(backends=("pointacc",)).run_batch(
            _requests(4))
        with use_tracer(Tracer()):
            traced = SimulationEngine(backends=("pointacc",)).run_batch(
                _requests(4))
        for a, b in zip(baseline, traced):
            assert a.reports == b.reports

    def test_parentless_request_spans_are_exported(self):
        """The worker hand-off mechanism: a request span with no parent
        (nothing enclosing on this thread, as in a worker process) is
        exported on ``result.spans`` — and it is the *same* object the
        local tracer holds as a root, so in-process callers lose nothing
        and dumps never double-count."""
        with use_tracer(Tracer()) as tracer:
            results = SimulationEngine(backends=("pointacc",)).run_batch(
                _requests(2))
        for result in results:
            assert [s.name for s in result.spans] == ["request"]
            assert result.spans[0] in tracer.roots
        names = {n.name for root in tracer.roots for n in root.walk()}
        assert "request" in names and "backend" in names

    def test_enclosed_request_spans_are_not_exported(self):
        """Under an enclosing span (a session's frame, a cluster's
        dispatch) the request span has a parent — nothing to hand off."""
        engine = SimulationEngine(backends=("pointacc",))
        with use_tracer(Tracer()) as tracer:
            with span("frame") as frame:
                results = engine.run_batch(_requests(2))
        assert all(r.spans == [] for r in results)
        assert [c.name for c in frame.children] == ["request", "request"]
        assert tracer.roots == [frame]


class TestWorkerTracing:
    def test_worker_spans_reparent_under_dispatch(self):
        """Worker-built span trees ship back with the results and land
        under a dispatch span with an explicit ipc residual child."""
        with use_tracer(Tracer()) as tracer:
            with EngineCluster(n_shards=2, backends=("pointacc",),
                               workers=2) as cluster:
                results = cluster.run_batch(_requests(4))
        assert all(r.spans == [] for r in results)  # consumed on attach
        dispatches = [r for r in tracer.roots if r.name == "dispatch"]
        assert dispatches, "no dispatch spans reached the tracer"
        child_names = {c.name for d in dispatches for c in d.children}
        assert "request" in child_names
        assert "ipc" in child_names
        requests = [c for d in dispatches for c in d.children
                    if c.name == "request"]
        assert len(requests) == 4
        for d in dispatches:
            # The remote spans plus the ipc residual never exceed the
            # dispatch wall the parent measured around the round-trip.
            assert d.child_seconds() <= d.duration * 1.05 + 1e-6

    def test_worker_crash_leaves_a_balanced_tracer(self):
        """A worker dying mid-window surfaces as RuntimeError; the tracer
        stack must still unwind completely and hold well-formed trees."""
        with use_tracer(Tracer()) as tracer:
            cluster = EngineCluster(n_shards=2, backends=("pointacc",),
                                    workers=2)
            try:
                cluster.run_batch(_requests(2))  # healthy window first
                for proc in cluster._pool._procs:
                    proc.kill()
                for proc in cluster._pool._procs:
                    proc.join(5.0)
                with pytest.raises(RuntimeError, match="worker"):
                    cluster.run_batch(_requests(2))
            finally:
                cluster.close()
            assert tracer.current() is None  # no span left open
            for root in tracer.roots:
                for node in root.walk():
                    assert node.duration >= 0

    def test_untraced_worker_run_ships_no_spans(self):
        with EngineCluster(n_shards=2, backends=("pointacc",),
                           workers=2) as cluster:
            results = cluster.run_batch(_requests(2))
        assert all(r.spans == [] for r in results)


class TestFleetTracing:
    def test_fleet_round_spans_and_bit_identity(self):
        from repro.fleet import FleetSession, StreamSpec

        def build():
            specs = [
                StreamSpec(name=f"veh{i}",
                           sequence=FrameSequence(CFG),
                           benchmark="MinkNet(o)", scale=SCALE,
                           n_frames=2)
                for i in range(2)
            ]
            return FleetSession(specs, backends=("pointacc",), n_shards=1)

        untraced = build().run()
        with use_tracer(Tracer()) as tracer:
            traced = build().run()
        for name in untraced:
            for a, b in zip(untraced[name], traced[name]):
                assert a.result.reports == b.result.reports
        rounds = [r for r in tracer.roots if r.name == "round"]
        assert len(rounds) == 2  # 2 frames x both streams per round
        for r in rounds:
            # round → dispatch (per shard run) → request
            names = {node.name for node in r.walk()}
            assert "dispatch" in names and "request" in names
