"""MetricsRegistry: instruments, snapshot schema, and merge equivalence
with the worker pool's historical ``merge_snapshots``."""

from repro.cluster.workers import merge_snapshots as workers_merge
from repro.obs.metrics import (
    DEFAULT_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)


class TestHistogram:
    def test_bucket_edges(self):
        hist = Histogram(buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 10.0, 99.0):
            hist.observe(value)
        # bisect_left: a value equal to an edge lands in that edge's bucket.
        assert hist.counts == [2, 2, 1]
        snap = hist.snapshot()
        assert snap["count"] == 5
        assert snap["min"] == 0.5
        assert snap["max"] == 99.0
        assert snap["sum"] == 115.5

    def test_empty_snapshot_is_total(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["min"] == 0.0 and snap["max"] == 0.0

    def test_snapshots_merge_elementwise(self):
        a, b = Histogram(buckets=(1.0, 10.0)), Histogram(buckets=(1.0, 10.0))
        a.observe(0.5)
        b.observe(5.0)
        b.observe(50.0)
        merged = MetricsRegistry.merge([a.snapshot(), b.snapshot()])
        # The merge contract consumers rely on: counts sum element-wise,
        # count/sum sum as plain numeric leaves.
        assert merged["counts"] == [1, 1, 1]
        assert merged["count"] == 3
        assert merged["sum"] == 55.5


class TestRegistry:
    def test_snapshot_schema(self):
        registry = MetricsRegistry()
        registry.counter("frames")
        registry.counter("frames", 2)
        registry.gauge("clock_s", 1.5)
        registry.observe("span_ms.plan", 3.0)
        registry.register("stream", lambda: {"completed": 4})
        snap = registry.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms", "sources"}
        assert snap["counters"] == {"frames": 3.0}
        assert snap["gauges"] == {"clock_s": 1.5}
        assert snap["histograms"]["span_ms.plan"]["count"] == 1
        assert snap["sources"] == {"stream": {"completed": 4}}

    def test_ingest_merges_static_payloads(self):
        registry = MetricsRegistry()
        registry.ingest("workers", {"hits": 2, "lookups": 4, "hit_rate": 0.5})
        registry.ingest("workers", {"hits": 4, "lookups": 4, "hit_rate": 1.0})
        merged = registry.snapshot()["sources"]["workers"]
        assert merged["hits"] == 6
        assert merged["lookups"] == 8
        assert merged["hit_rate"] == 0.75

    def test_failing_supplier_degrades_to_empty(self):
        registry = MetricsRegistry()
        registry.register("broken", lambda: 1 / 0)
        assert registry.snapshot()["sources"]["broken"] == {}

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS_MS) == sorted(DEFAULT_BUCKETS_MS)


#: A realistic pair of worker stats payloads — the shape WorkerPool.stats()
#: ships (nested tier snapshots, ratio leaves, mode strings).
WORKER_SNAPSHOTS = [
    {
        "requests": 6,
        "map_cache": {"hits": 10, "misses": 2, "lookups": 12,
                      "hit_rate": 10 / 12,
                      "by_op": {"knn": {"hits": 4, "misses": 1}}},
        "front": {"tile_hits": 30, "tile_lookups": 40,
                  "tile_hit_rate": 0.75},
        "l2": {"hits": 3, "misses": 1, "lookups": 4, "hit_rate": 0.75,
               "persistent": False},
    },
    {
        "requests": 4,
        "map_cache": {"hits": 2, "misses": 6, "lookups": 8,
                      "hit_rate": 0.25,
                      "by_op": {"knn": {"hits": 2, "misses": 3}}},
        "front": {"tile_hits": 10, "tile_lookups": 60,
                  "tile_hit_rate": 10 / 60},
        "l2": {"hits": 1, "misses": 3, "lookups": 4, "hit_rate": 0.25,
               "persistent": True},
    },
]


class TestMergeEquivalence:
    def test_registry_merge_equals_worker_merge(self):
        """MetricsRegistry.merge subsumed the worker pool's merge: both
        entry points must produce the identical merged view."""
        assert (MetricsRegistry.merge(WORKER_SNAPSHOTS)
                == workers_merge(WORKER_SNAPSHOTS))
        assert (MetricsRegistry.merge(WORKER_SNAPSHOTS)
                == merge_snapshots(WORKER_SNAPSHOTS))

    def test_merged_values(self):
        merged = MetricsRegistry.merge(WORKER_SNAPSHOTS)
        assert merged["requests"] == 10
        assert merged["map_cache"]["hits"] == 12
        assert merged["map_cache"]["lookups"] == 20
        assert merged["map_cache"]["hit_rate"] == 12 / 20  # recomputed
        assert merged["map_cache"]["by_op"]["knn"] == {"hits": 6, "misses": 4}
        assert merged["front"]["tile_hit_rate"] == 40 / 100
        assert merged["l2"]["persistent"] is False  # first value kept

    def test_histogram_lists_sum_elementwise(self):
        merged = MetricsRegistry.merge([
            {"hist": {"counts": [1, 0, 2], "count": 3}},
            {"hist": {"counts": [0, 5, 1], "count": 6}},
        ])
        assert merged["hist"]["counts"] == [1, 5, 3]
        assert merged["hist"]["count"] == 9

    def test_mismatched_lists_keep_first(self):
        merged = MetricsRegistry.merge([
            {"hist": {"counts": [1, 2]}},
            {"hist": {"counts": [1, 2, 3]}},
        ])
        assert merged["hist"]["counts"] == [1, 2]

    def test_empty_and_none_snapshots_drop_out(self):
        assert MetricsRegistry.merge([]) == {}
        assert MetricsRegistry.merge([{}, None]) == {}
        assert MetricsRegistry.merge([None, {"a": 1}]) == {"a": 1}

    def test_rate_without_counters_is_dropped(self):
        merged = MetricsRegistry.merge([{"odd_rate": 0.5}, {"odd_rate": 0.7}])
        assert "odd_rate" not in merged
