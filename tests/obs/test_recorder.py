"""Flight recorder: bounded retention and JSONL export."""

import json

from repro.obs.recorder import FlightRecorder
from repro.obs.report import load_trace
from repro.obs.trace import Span


def _frame(index: int) -> Span:
    root = Span("frame", {"index": index})
    root.duration = 0.001 * (index + 1)
    return root


class TestRetention:
    def test_keeps_the_k_slowest(self):
        recorder = FlightRecorder(k_slowest=3, max_missed=8)
        for i in range(10):
            recorder.record(_frame(i), latency_s=0.001 * (i + 1), frame=i)
        slow = [r for r in recorder.records() if r["kind"] == "slow"]
        assert [r["frame"] for r in slow] == [9, 8, 7]  # slowest first

    def test_missed_ring_is_bounded_and_recent(self):
        recorder = FlightRecorder(k_slowest=0, max_missed=2)
        for i in range(5):
            recorder.record(_frame(i), latency_s=0.001,
                            deadline_missed=True, frame=i)
        missed = recorder.records()
        assert [r["frame"] for r in missed] == [3, 4]
        assert all(r["kind"] == "missed" for r in missed)

    def test_a_missed_frame_can_also_be_slow(self):
        recorder = FlightRecorder(k_slowest=4, max_missed=4)
        recorder.record(_frame(0), latency_s=0.5,
                        deadline_missed=True, frame=0)
        kinds = sorted(r["kind"] for r in recorder.records())
        assert kinds == ["missed", "slow"]

    def test_equal_latencies_do_not_tie_break_on_spans(self):
        """Identical latencies must not force heap comparison of Span
        objects (which have no ordering) — the seq number tie-breaks."""
        recorder = FlightRecorder(k_slowest=2)
        for i in range(4):
            recorder.record(_frame(i), latency_s=0.010, frame=i)
        assert len([r for r in recorder.records()]) == 2


class TestExport:
    def test_dump_jsonl_and_report_loader(self, tmp_path):
        recorder = FlightRecorder(k_slowest=2, max_missed=2)
        root = _frame(0)
        child = Span("request")
        child.duration = 0.0005
        root.children.append(child)
        recorder.record(root, latency_s=0.002, deadline_missed=True, frame=0)
        path = tmp_path / "flight.jsonl"
        n = recorder.dump_jsonl(str(path))
        assert n == 2  # one slow + one missed record for the same frame
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert {r["kind"] for r in records} == {"slow", "missed"}
        assert all(r["latency_ms"] == 2.0 for r in records)
        assert all(r["span"]["children"][0]["name"] == "request"
                   for r in records)
        # trace-report's loader unwraps recorder records into span roots.
        roots = load_trace(str(path))
        assert [r["name"] for r in roots] == ["frame", "frame"]
        assert {r["attrs"]["recorded"] for r in roots} == {"slow", "missed"}
