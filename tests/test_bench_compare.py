"""scripts/bench_compare.py: payload diffing and the CI exit contract."""

import json
import pathlib
import subprocess
import sys

import pytest

SCRIPT = pathlib.Path(__file__).resolve().parents[1] / "scripts" / "bench_compare.py"


def _payload(speedup, command="bench-stream", schema=1, **extra):
    return {"schema": schema, "command": command, "speedup": speedup, **extra}


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def _run(*argv):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *argv],
        capture_output=True, text=True,
    )


class TestExitContract:
    def test_improvement_passes(self, tmp_path):
        base = _write(tmp_path, "a.json", _payload(3.0))
        cand = _write(tmp_path, "b.json", _payload(3.5))
        result = _run(base, cand)
        assert result.returncode == 0, result.stderr
        assert "ok" in result.stdout

    def test_small_drop_within_threshold_passes(self, tmp_path):
        base = _write(tmp_path, "a.json", _payload(3.0))
        cand = _write(tmp_path, "b.json", _payload(2.8))
        assert _run(base, cand).returncode == 0

    def test_regression_fails_with_exit_1(self, tmp_path):
        base = _write(tmp_path, "a.json", _payload(3.0))
        cand = _write(tmp_path, "b.json", _payload(2.0))
        result = _run(base, cand)
        assert result.returncode == 1
        assert "REGRESSION" in result.stderr

    def test_custom_threshold(self, tmp_path):
        base = _write(tmp_path, "a.json", _payload(3.0))
        cand = _write(tmp_path, "b.json", _payload(2.0))
        assert _run(base, cand, "--threshold", "0.5").returncode == 0


class TestFormatGuards:
    def test_unknown_schema_exits_2(self, tmp_path):
        base = _write(tmp_path, "a.json", _payload(3.0, schema=99))
        cand = _write(tmp_path, "b.json", _payload(3.0))
        assert _run(base, cand).returncode == 2

    def test_mismatched_commands_exit_2(self, tmp_path):
        base = _write(tmp_path, "a.json", _payload(3.0, command="bench-stream"))
        cand = _write(tmp_path, "b.json", _payload(3.0, command="bench-fleet"))
        assert _run(base, cand).returncode == 2

    def test_missing_metric_exits_2(self, tmp_path):
        base = _write(tmp_path, "a.json",
                      {"schema": 1, "command": "bench-stream"})
        cand = _write(tmp_path, "b.json", _payload(3.0))
        assert _run(base, cand).returncode == 2

    def test_unreadable_file_exits_2(self, tmp_path):
        cand = _write(tmp_path, "b.json", _payload(3.0))
        assert _run(str(tmp_path / "missing.json"), cand).returncode == 2

    def test_invalid_json_exits_2(self, tmp_path):
        bad = tmp_path / "a.json"
        bad.write_text("not json {")
        cand = _write(tmp_path, "b.json", _payload(3.0))
        assert _run(str(bad), cand).returncode == 2


class TestRealPayloads:
    def test_roundtrip_with_cli_payload(self, tmp_path):
        """A payload actually written by the CLI passes through unchanged
        (schema field is what the CLI stamps)."""
        from repro.cli import BENCH_JSON_SCHEMA

        payload = _payload(4.2, schema=BENCH_JSON_SCHEMA,
                           frames=6, benchmark="MinkNet(o)")
        base = _write(tmp_path, "a.json", payload)
        cand = _write(tmp_path, "b.json", payload)
        result = _run(base, cand)
        assert result.returncode == 0
        assert "+0.0%" in result.stdout
