"""scripts/bench_compare.py: payload diffing and the CI exit contract."""

import json
import os
import pathlib
import subprocess
import sys

import pytest

SCRIPT = pathlib.Path(__file__).resolve().parents[1] / "scripts" / "bench_compare.py"


def _payload(speedup, command="bench-stream", schema=1, **extra):
    return {"schema": schema, "command": command, "speedup": speedup, **extra}


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def _run(*argv, env=None):
    merged = dict(os.environ, **env) if env else None
    return subprocess.run(
        [sys.executable, str(SCRIPT), *argv],
        capture_output=True, text=True, env=merged,
    )


class TestExitContract:
    def test_improvement_passes(self, tmp_path):
        base = _write(tmp_path, "a.json", _payload(3.0))
        cand = _write(tmp_path, "b.json", _payload(3.5))
        result = _run(base, cand)
        assert result.returncode == 0, result.stderr
        assert "ok" in result.stdout

    def test_small_drop_within_threshold_passes(self, tmp_path):
        base = _write(tmp_path, "a.json", _payload(3.0))
        cand = _write(tmp_path, "b.json", _payload(2.8))
        assert _run(base, cand).returncode == 0

    def test_regression_fails_with_exit_1(self, tmp_path):
        base = _write(tmp_path, "a.json", _payload(3.0))
        cand = _write(tmp_path, "b.json", _payload(2.0))
        result = _run(base, cand)
        assert result.returncode == 1
        assert "REGRESSION" in result.stderr

    def test_custom_threshold(self, tmp_path):
        base = _write(tmp_path, "a.json", _payload(3.0))
        cand = _write(tmp_path, "b.json", _payload(2.0))
        assert _run(base, cand, "--threshold", "0.5").returncode == 0


class TestFormatGuards:
    def test_unknown_schema_exits_2(self, tmp_path):
        base = _write(tmp_path, "a.json", _payload(3.0, schema=99))
        cand = _write(tmp_path, "b.json", _payload(3.0))
        assert _run(base, cand).returncode == 2

    def test_mismatched_commands_exit_2(self, tmp_path):
        base = _write(tmp_path, "a.json", _payload(3.0, command="bench-stream"))
        cand = _write(tmp_path, "b.json", _payload(3.0, command="bench-fleet"))
        assert _run(base, cand).returncode == 2

    def test_missing_metric_exits_2(self, tmp_path):
        base = _write(tmp_path, "a.json",
                      {"schema": 1, "command": "bench-stream"})
        cand = _write(tmp_path, "b.json", _payload(3.0))
        assert _run(base, cand).returncode == 2

    def test_unreadable_file_exits_2(self, tmp_path):
        cand = _write(tmp_path, "b.json", _payload(3.0))
        assert _run(str(tmp_path / "missing.json"), cand).returncode == 2

    def test_invalid_json_exits_2(self, tmp_path):
        bad = tmp_path / "a.json"
        bad.write_text("not json {")
        cand = _write(tmp_path, "b.json", _payload(3.0))
        assert _run(str(bad), cand).returncode == 2


class TestRecordIdempotence:
    SHA = "feedface" * 5

    def test_duplicate_label_and_commit_skipped(self, tmp_path):
        """A re-run CI job cannot double-append: the second --record of
        the same (command, label, commit) is a no-op with a note."""
        payload = _write(tmp_path, "a.json", _payload(3.0))
        traj = str(tmp_path / "TRAJECTORY.json")
        env = {"GITHUB_SHA": self.SHA}
        first = _run("--record", payload, "--trajectory", traj,
                     "--label", "pr9", env=env)
        assert first.returncode == 0, first.stderr
        assert "recorded bench-stream" in first.stdout
        second = _run("--record", payload, "--trajectory", traj,
                      "--label", "pr9", env=env)
        assert second.returncode == 0, second.stderr
        assert "skipping duplicate" in second.stdout
        entries = json.loads(pathlib.Path(traj).read_text())["entries"]
        assert len(entries) == 1
        assert entries[0]["commit"] == self.SHA

    def test_different_label_same_commit_appends(self, tmp_path):
        payload = _write(tmp_path, "a.json", _payload(3.0))
        traj = str(tmp_path / "TRAJECTORY.json")
        env = {"GITHUB_SHA": self.SHA}
        assert _run("--record", payload, "--trajectory", traj,
                    "--label", "pr9", env=env).returncode == 0
        assert _run("--record", payload, "--trajectory", traj,
                    "--label", "pr10", env=env).returncode == 0
        entries = json.loads(pathlib.Path(traj).read_text())["entries"]
        assert [e["label"] for e in entries] == ["pr9", "pr10"]


def _trace(tmp_path, name, splice_ms):
    """A minimal one-root trace file with a splice child of known cost."""
    root = {"name": "request", "dur_ms": 10.0 + splice_ms, "attrs": {},
            "children": [{"name": "splice", "dur_ms": splice_ms,
                          "children": []}]}
    path = tmp_path / name
    path.write_text(json.dumps(root) + "\n")
    return str(path)


class TestPhaseAttribution:
    def test_missing_trace_skips_without_failing(self, tmp_path):
        base = _write(tmp_path, "a.json", _payload(3.0))
        cand = _write(tmp_path, "b.json", _payload(3.5))
        result = _run(base, cand,
                      "--baseline-trace", str(tmp_path / "missing.jsonl"),
                      "--candidate-trace", str(tmp_path / "missing.jsonl"))
        assert result.returncode == 0, result.stderr
        assert "skipping phase attribution" in result.stdout

    def test_attribution_names_the_phase_and_writes_json(self, tmp_path):
        base = _write(tmp_path, "a.json", _payload(3.0))
        cand = _write(tmp_path, "b.json", _payload(3.5))
        base_trace = _trace(tmp_path, "base.jsonl", splice_ms=10.0)
        cand_trace = _trace(tmp_path, "cand.jsonl", splice_ms=25.0)
        out = tmp_path / "TRACE_DIFF.json"
        result = _run(base, cand,
                      "--baseline-trace", base_trace,
                      "--candidate-trace", cand_trace,
                      "--attribution-out", str(out))
        assert result.returncode == 0, result.stderr
        assert "attribution: splice self-time +150.0%" in result.stdout
        verdict = json.loads(out.read_text())
        assert verdict["top_phase"] == "splice"
        assert verdict["phases"][0]["delta_ms"] == pytest.approx(15.0)

    def test_attribution_never_masks_a_regression(self, tmp_path):
        base = _write(tmp_path, "a.json", _payload(3.0))
        cand = _write(tmp_path, "b.json", _payload(2.0))
        trace = _trace(tmp_path, "t.jsonl", splice_ms=10.0)
        result = _run(base, cand, "--baseline-trace", trace,
                      "--candidate-trace", trace)
        assert result.returncode == 1
        assert "REGRESSION" in result.stderr


class TestRealPayloads:
    def test_roundtrip_with_cli_payload(self, tmp_path):
        """A payload actually written by the CLI passes through unchanged
        (schema field is what the CLI stamps)."""
        from repro.cli import BENCH_JSON_SCHEMA

        payload = _payload(4.2, schema=BENCH_JSON_SCHEMA,
                           frames=6, benchmark="MinkNet(o)")
        base = _write(tmp_path, "a.json", payload)
        cand = _write(tmp_path, "b.json", payload)
        result = _run(base, cand)
        assert result.returncode == 0
        assert "+0.0%" in result.stdout
