"""Multi-process hammering of one shared cache directory.

This is the safety net under worker-mode serving: N real OS processes
share one ``SharedMapStore`` cache directory — overlapping keys, tight
memory bounds (so disk re-probes happen constantly), a tight disk budget
(so eviction races happen constantly), corrupt spill files injected by
the parent, and writers killed between ``open`` and ``os.replace``.

The invariants, verified from inside every process:

* a served value is always *correct* — a corrupt or truncated spill is
  only ever a counted ``disk_errors`` miss, never a wrong array;
* a file vanishing underneath a read/refresh (another process's budget
  enforcement) is a plain miss or a kept hit, never an exception;
* per-store counters stay internally consistent under any interleaving;
* mid-write-kill temp debris is swept, never accumulated.
"""

import multiprocessing
import os
import random

import numpy as np
import pytest

from repro.cluster import SharedMapStore
from repro.cluster.store import _TMP_MARKER

N_WORKERS = 4
N_KEYS = 12
N_ROUNDS = 50
DISK_BUDGET = 8 * 1024  # ~12 entries of ~640 B: rescans and evictions galore

_CTX = multiprocessing.get_context(
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)


def _key(i: int) -> bytes:
    return bytes([i]) + bytes(15)


def _value(i: int) -> np.ndarray:
    return np.full(64, i, dtype=np.int64)


def _hammer(cache_dir, worker_idx, corrupt_key, max_disk_bytes, conn):
    """One worker: verify the pre-corrupted key is a counted error, then
    hammer overlapping keys, checking every served value.  Exit codes:
    0 ok, 2 corrupt-probe contract broken, 3 wrong value served."""
    store = SharedMapStore(
        max_entries=4,  # tiny memory tier: almost every get re-probes disk
        cache_dir=cache_dir,
        max_disk_bytes=max_disk_bytes,
    )
    # The parent planted a corrupt spill under this worker's private key:
    # it must come back as a miss, counted in disk_errors, never raise.
    if store.get(corrupt_key, op="t") is not None or store.disk_errors != 1:
        conn.send(("corrupt-probe", None))
        os._exit(2)
    rng = random.Random(worker_idx)
    for _ in range(N_ROUNDS):
        i = rng.randrange(N_KEYS)
        served = store.get(_key(i), op="t")
        if served is None:
            store.put(_key(i), _value(i), op="t")
        elif not np.array_equal(served, _value(i)):
            conn.send(("wrong-value", i))
            os._exit(3)
    conn.send(("ok", store.stats().snapshot()))
    os._exit(0)


def _die_mid_write(cache_dir, conn):
    """A writer killed between open() and os.replace(): patch the rename
    away and exit hard, leaving a pid-suffixed temp orphan behind."""
    store = SharedMapStore(cache_dir=cache_dir)
    import repro.cluster.store as store_mod

    def killed(*args, **kwargs):
        conn.send(os.getpid())
        os._exit(0)  # the "SIGKILL" lands here, temp file still on disk

    store_mod.os.replace = killed
    store.put(_key(0), _value(0), op="t")
    os._exit(4)  # unreachable unless the write path stopped using os.replace


@pytest.mark.parametrize("budgeted", [True, False], ids=["budget", "unbounded"])
def test_concurrent_hammer_never_serves_corrupt_values(tmp_path, budgeted):
    cache_dir = tmp_path / "shared"
    cache_dir.mkdir()
    # One corrupt spill per worker (truncated pickle), plus two shared
    # corrupt keys inside the hammer range that whichever worker probes
    # first will delete-and-recompute.
    corrupt_keys = [_key(N_KEYS + w) for w in range(N_WORKERS)]
    for key in corrupt_keys:
        (cache_dir / (key.hex() + ".map")).write_bytes(b"\x80\x05partial")
    for i in (0, 1):
        (cache_dir / (_key(i).hex() + ".map")).write_bytes(b"not a pickle")

    workers, conns = [], []
    for w in range(N_WORKERS):
        parent_conn, child_conn = _CTX.Pipe(duplex=False)
        proc = _CTX.Process(
            target=_hammer,
            args=(cache_dir, w, corrupt_keys[w],
                  DISK_BUDGET if budgeted else None, child_conn),
        )
        proc.start()
        child_conn.close()
        workers.append(proc)
        conns.append(parent_conn)

    replies = [conn.recv() for conn in conns]
    for proc in workers:
        proc.join(timeout=60)
    assert [proc.exitcode for proc in workers] == [0] * N_WORKERS, replies

    snapshots = [payload for kind, payload in replies if kind == "ok"]
    assert len(snapshots) == N_WORKERS
    for snap in snapshots:
        # Internal consistency under any interleaving.
        assert snap["lookups"] == snap["hits"] + snap["misses"]
        assert snap["disk_hits"] <= snap["hits"]
        assert snap["disk_errors"] >= 1  # at least the planted private key
        assert snap["disk_evictions"] >= 0
    # The planted corrupt files were all discovered (and deleted), whether
    # by the private probe or the shared-key hammering.
    assert sum(s["disk_errors"] for s in snapshots) >= N_WORKERS
    # Every spill that survived the melee unpickles to the right value.
    survivor = SharedMapStore(cache_dir=cache_dir)
    served = 0
    for i in range(N_KEYS):
        value = survivor.get(_key(i), op="t")
        if value is not None:
            assert np.array_equal(value, _value(i))
            served += 1
    assert survivor.disk_errors == 0
    assert served > 0  # the directory is not empty after 4x50 rounds


def test_mid_write_kill_leaves_sweepable_debris_only(tmp_path):
    cache_dir = tmp_path / "shared"
    parent_conn, child_conn = _CTX.Pipe(duplex=False)
    proc = _CTX.Process(target=_die_mid_write, args=(cache_dir, child_conn))
    proc.start()
    child_conn.close()
    dead_pid = parent_conn.recv()
    proc.join(timeout=60)
    assert proc.exitcode == 0
    debris = [p.name for p in cache_dir.iterdir() if _TMP_MARKER in p.name]
    assert debris == [_key(0).hex() + f".map.tmp{dead_pid}"]
    # No committed entry: the kill landed before the atomic rename.
    assert not list(cache_dir.glob("*.map"))
    # A fresh store on the same directory sweeps the dead writer's orphan
    # at construction and serves normally afterwards.
    store = SharedMapStore(cache_dir=cache_dir)
    assert not [p for p in cache_dir.iterdir() if _TMP_MARKER in p.name]
    assert store.get(_key(0), op="t") is None  # plain miss, not an error
    assert store.disk_errors == 0
    store.put(_key(0), _value(0), op="t")
    assert np.array_equal(
        SharedMapStore(cache_dir=cache_dir).get(_key(0), op="t"), _value(0)
    )


def test_concurrent_budget_enforcement_stays_consistent(tmp_path):
    """Two stores, one directory, a budget small enough that every write
    triggers enforcement: whatever interleaving happens, reads stay
    exception-free and the directory ends within budget once quiescent."""
    cache_dir = tmp_path / "shared"
    a = SharedMapStore(cache_dir=cache_dir, max_disk_bytes=2048)
    b = SharedMapStore(cache_dir=cache_dir, max_disk_bytes=2048)
    for round_idx in range(20):
        i = round_idx % 6
        a.put(_key(i), _value(i), op="t")
        value = b.get(_key(i), op="t")
        if value is not None:
            assert np.array_equal(value, _value(i))
        b.put(_key(i + 1), _value(i + 1), op="t")
    total = sum(p.stat().st_size for p in cache_dir.glob("*.map"))
    assert total <= 2048
    assert a.stats().extra["disk_evictions"] + b.stats().extra[
        "disk_evictions"] > 0
