"""EngineCluster plumbing: sharding, QoS wiring, stats, persistence hooks."""

import pytest

from repro.cluster import EngineCluster, SharedMapStore
from repro.engine import SimRequest


def _reqs(n=6, **kw):
    return [SimRequest("PointNet++(c)", scale=0.1, seed=i % 2, tag=f"r{i}", **kw)
            for i in range(n)]


class TestConstruction:
    def test_defaults(self):
        cluster = EngineCluster()
        assert cluster.n_shards == 2
        assert isinstance(cluster.l2, SharedMapStore)
        assert cluster.l2.cache_dir is None

    def test_rejects_bad_shards_and_routing(self):
        with pytest.raises(ValueError):
            EngineCluster(n_shards=0)
        with pytest.raises(ValueError):
            EngineCluster(routing="everywhere")

    def test_cache_dir_needs_auto_l2(self, tmp_path):
        with pytest.raises(ValueError):
            EngineCluster(l2=None, cache_dir=tmp_path)

    def test_shared_l2_is_one_object(self):
        cluster = EngineCluster(n_shards=3)
        assert all(shard.l2 is cluster.l2 for shard in cluster.shards)


class TestExecution:
    def test_batch_returns_submission_order(self):
        cluster = EngineCluster(n_shards=2)
        reqs = _reqs(5)
        results = cluster.run_batch(reqs)
        assert [r.request for r in results] == reqs
        assert [r.index for r in results] == list(range(5))

    def test_results_carry_shard_ids(self):
        cluster = EngineCluster(n_shards=4, routing="least-loaded")
        results = cluster.run_batch(_reqs(8))
        shards = {r.shard for r in results}
        assert all(s is not None and 0 <= s < 4 for s in shards)
        assert len(shards) > 1

    def test_affinity_repeats_share_a_shard(self):
        cluster = EngineCluster(n_shards=4, routing="affinity")
        results = cluster.run_batch(_reqs(6))
        by_key = {}
        for r in results:
            by_key.setdefault(r.request.workload_key, set()).add(r.shard)
        assert all(len(shards) == 1 for shards in by_key.values())

    def test_stream_yields_everything(self):
        cluster = EngineCluster(n_shards=2)
        results = list(cluster.stream(iter(_reqs(5)), window=2))
        assert len(results) == 5
        with pytest.raises(ValueError):
            next(cluster.stream(iter([]), window=0))

    def test_l2_serves_across_shards(self):
        # Two shards forced to see the same geometry (least-loaded splits
        # the repeats): the second shard's build hits the shared store.
        cluster = EngineCluster(n_shards=2, routing="least-loaded")
        cluster.run_batch([SimRequest("PointNet++(c)", scale=0.1, seed=0)] * 2)
        # one trace built per shard; the second build was served by L2
        assert cluster.l2.stats().hits > 0

    def test_rejected_requests_keep_their_slot(self):
        cluster = EngineCluster(n_shards=2)
        reqs = [SimRequest("PointNet++(c)", scale=0.1),
                SimRequest("PointNet++(c)", scale=0.1, deadline_ms=0.0),
                SimRequest("PointNet++(c)", scale=0.1, seed=1)]
        results = cluster.run_batch(reqs)
        assert results[0].reports and results[2].reports
        assert not results[1].reports
        assert "rejected" in results[1].errors["cluster"]
        assert results[1].index == 1

    def test_generous_deadlines_met_and_scored(self):
        cluster = EngineCluster(n_shards=2)
        results = cluster.run_batch(_reqs(4, deadline_ms=1e9, tenant="t"))
        assert all(r.deadline_met is True for r in results)
        stats = cluster.stats()
        assert stats.deadline_met == 4 and stats.deadline_missed == 0
        assert stats.tenants["t"]["deadline_met"] == 4

    def test_impossible_deadline_missed_not_rejected(self):
        cluster = EngineCluster(n_shards=1)
        result = cluster.run_batch(
            [SimRequest("PointNet++(c)", scale=0.1, deadline_ms=1e-9)])[0]
        assert result.reports  # admitted and served...
        assert result.deadline_met is False  # ...but scored as missed


class TestStats:
    def test_aggregates_all_layers(self):
        cluster = EngineCluster(n_shards=2)
        cluster.run_batch(_reqs(6, tenant="acme"))
        stats = cluster.stats()
        assert stats.requests == 6 and stats.admitted == 6
        assert stats.throughput_rps > 0
        assert sum(stats.routing["counts"]) == 6
        assert len(stats.shards) == 2
        assert sum(s["requests"] for s in stats.shards) == 6
        assert stats.tenants["acme"]["requests"] == 6
        assert stats.l2["lookups"] > 0
        summary = stats.summary()
        assert summary["admitted"] == 6

    def test_l1_disabled_tier_config(self):
        cluster = EngineCluster(n_shards=2, map_cache=None)
        cluster.run_batch(_reqs(4))
        assert all(shard.map_cache is None for shard in cluster.shards)
        assert cluster.l2.stats().lookups > 0  # L2 alone still consulted


class TestPersistence:
    def test_save_cache_and_warm_start(self, tmp_path):
        cache_dir = tmp_path / "spill"
        cold = EngineCluster(n_shards=2, cache_dir=cache_dir)
        cold.run_batch(_reqs(4))
        assert any(cache_dir.glob("*.map"))  # write-through spilled
        warm = EngineCluster(n_shards=2, cache_dir=cache_dir)
        first = warm.run_batch(_reqs(1))[0]
        assert first.map_cache_hits > 0  # very first request is warm
        assert warm.l2.disk_hits > 0

    def test_save_cache_without_l2_is_noop(self):
        assert EngineCluster(l2=None).save_cache() == 0

    def test_explicit_save_for_non_write_through_store(self, tmp_path):
        store = SharedMapStore(write_through=False)
        cluster = EngineCluster(n_shards=2, l2=store)
        cluster.run_batch(_reqs(4))
        target = tmp_path / "explicit"
        written = cluster.save_cache(target)
        assert written == len(store)
        assert written > 0
        assert len(list(target.glob("*.map"))) == written
