"""SharedMapStore: L2 semantics, disk spill, persistence, corruption."""

import os
import pickle

import numpy as np
import pytest

from repro.cluster import SharedMapStore
from repro.engine import MapCache
from repro.mapping import TieredLookup, farthest_point_sampling, use_map_cache


@pytest.fixture
def cache_dir(tmp_path):
    """Persistence spill directory, auto-removed by pytest's tmp_path."""
    return tmp_path / "map-store"


def _fill(store, n=3):
    keys = []
    for i in range(n):
        key = store.key("op", (np.full(4, i),), {"i": i})
        store.put(key, np.arange(8) + i, "op")
        keys.append(key)
    return keys


class TestMemoryTier:
    def test_is_a_map_cache(self):
        store = SharedMapStore()
        assert isinstance(store, MapCache)
        with use_map_cache(store):
            pts = np.random.default_rng(0).normal(size=(32, 3))
            a = farthest_point_sampling(pts, 4)
            b = farthest_point_sampling(pts, 4)
        assert np.array_equal(a, b)
        assert store.stats().hits == 1

    def test_no_disk_without_cache_dir(self, tmp_path):
        store = SharedMapStore()
        _fill(store)
        assert list(tmp_path.iterdir()) == []
        with pytest.raises(ValueError):
            store.save()


class TestDiskSpill:
    def test_write_through_persists_each_put(self, cache_dir):
        store = SharedMapStore(cache_dir=cache_dir)
        keys = _fill(store)
        files = sorted(p.name for p in cache_dir.glob("*.map"))
        assert files == sorted(k.hex() + ".map" for k in keys)

    def test_lazy_probe_warm_starts_fresh_store(self, cache_dir):
        keys = _fill(SharedMapStore(cache_dir=cache_dir))
        fresh = SharedMapStore(cache_dir=cache_dir)
        value = fresh.get(keys[0], "op")
        assert np.array_equal(value, np.arange(8))
        assert fresh.disk_hits == 1
        assert fresh.stats().hits == 1  # a disk hit is a hit, not a miss
        # promoted: second get is a pure memory hit
        fresh.get(keys[0], "op")
        assert fresh.disk_hits == 1

    def test_save_and_bulk_load_round_trip(self, cache_dir):
        store = SharedMapStore(cache_dir=None, write_through=False)
        keys = _fill(store, n=4)
        assert store.save(cache_dir) == 4
        warm = SharedMapStore()
        assert warm.load(cache_dir) == 4
        for i, key in enumerate(keys):
            assert np.array_equal(warm.get(key, "op"), np.arange(8) + i)

    def test_load_missing_dir_is_empty(self, cache_dir):
        assert SharedMapStore().load(cache_dir / "nope") == 0

    def test_memory_eviction_keeps_disk(self, cache_dir):
        store = SharedMapStore(max_entries=1, cache_dir=cache_dir)
        keys = _fill(store)
        assert len(store) == 1  # memory evicted down to the bound
        assert len(list(cache_dir.glob("*.map"))) == 3  # disk kept everything
        # the evicted entry comes back from disk, not recompute
        assert np.array_equal(store.get(keys[0], "op"), np.arange(8))
        assert store.disk_hits == 1
        # regression: the disk hit repairs the eviction-miss count too —
        # it was a spill hit, not a capacity problem
        stats = store.stats()
        assert stats.eviction_misses == 0
        assert stats.eviction_misses <= stats.misses  # subset invariant

    def test_corrupt_file_is_a_miss_not_a_failure(self, cache_dir):
        store = SharedMapStore(cache_dir=cache_dir)
        keys = _fill(store)
        path = cache_dir / (keys[1].hex() + ".map")
        path.write_bytes(b"not a pickle")
        fresh = SharedMapStore(cache_dir=cache_dir)
        assert fresh.get(keys[1], "op") is None
        assert fresh.disk_errors == 1
        # bulk load skips it but takes the healthy ones
        warm = SharedMapStore()
        assert warm.load(cache_dir) == 2

    def test_load_skips_foreign_files(self, cache_dir):
        _fill(SharedMapStore(cache_dir=cache_dir), n=2)
        (cache_dir / "zz-not-hex.map").write_bytes(pickle.dumps(np.arange(2)))
        warm = SharedMapStore()
        assert warm.load(cache_dir) == 2
        assert warm.disk_errors == 1
        # Foreign files are not ours to delete — only corrupt *spills* go.
        assert (cache_dir / "zz-not-hex.map").is_file()

    def test_corrupt_spill_is_deleted_and_slot_rewritable(self, cache_dir):
        """Regression: a truncated spill (killed mid-write without the tmp
        rename, disk-full debris) must be treated as a miss, removed, and
        rewritable by the recompute — not resurface as an error forever."""
        store = SharedMapStore(cache_dir=cache_dir)
        keys = _fill(store)
        path = cache_dir / (keys[0].hex() + ".map")
        path.write_bytes(pickle.dumps(np.arange(8))[:7])  # truncated pickle
        fresh = SharedMapStore(cache_dir=cache_dir)
        assert fresh.get(keys[0], "op") is None
        assert fresh.disk_errors == 1
        assert not path.is_file()  # deleted on sight
        fresh.put(keys[0], np.arange(8), "op")  # recompute rewrites the slot
        rewarm = SharedMapStore(cache_dir=cache_dir)
        assert np.array_equal(rewarm.get(keys[0], "op"), np.arange(8))
        assert rewarm.disk_errors == 0

    def test_corrupt_spill_deleted_by_bulk_load(self, cache_dir):
        store = SharedMapStore(cache_dir=cache_dir)
        keys = _fill(store)
        path = cache_dir / (keys[2].hex() + ".map")
        path.write_bytes(b"\x80")  # unreadable pickle
        warm = SharedMapStore()
        assert warm.load(cache_dir) == 2
        assert warm.disk_errors == 1
        assert not path.is_file()

    def test_snapshot_reports_disk_tier(self, cache_dir):
        store = SharedMapStore(cache_dir=cache_dir)
        snap = store.stats().snapshot()
        assert snap["persistent"] is True
        assert snap["disk_hits"] == 0


class TestTieredLookup:
    def _compute_counter(self):
        calls = {"n": 0}

        def compute():
            calls["n"] += 1
            return np.arange(6)

        return calls, compute

    def test_l2_hit_promotes_into_l1(self):
        l1, l2 = MapCache(), SharedMapStore()
        tiered = TieredLookup([l1, l2])
        calls, compute = self._compute_counter()
        args = ("op", (np.arange(4),), {"k": 1})
        tiered.memoize(*args, compute)          # full miss -> both tiers filled
        assert calls["n"] == 1 and len(l1) == 1 and len(l2) == 1
        l1.clear()
        out = tiered.memoize(*args, compute)    # L1 miss, L2 hit
        assert calls["n"] == 1
        assert np.array_equal(out, np.arange(6))
        assert len(l1) == 1                     # promoted back into L1
        assert tiered.stats().hits == 1 and tiered.stats().misses == 1

    def test_disk_hit_promotes_through_both_tiers(self, cache_dir):
        seed = SharedMapStore(cache_dir=cache_dir)
        key = seed.key("op", (np.arange(4),), {"k": 1})
        seed.put(key, np.arange(6), "op")
        l1, l2 = MapCache(), SharedMapStore(cache_dir=cache_dir)
        tiered = TieredLookup([l1, l2])
        calls, compute = self._compute_counter()
        out = tiered.memoize("op", (np.arange(4),), {"k": 1}, compute)
        assert calls["n"] == 0                  # served from disk
        assert np.array_equal(out, np.arange(6))
        assert l2.disk_hits == 1 and len(l1) == 1

    def test_use_map_cache_accepts_tier_list(self):
        l1, l2 = MapCache(), SharedMapStore()
        pts = np.random.default_rng(1).normal(size=(24, 3))
        with use_map_cache([l1, l2]) as installed:
            farthest_point_sampling(pts, 4)
        assert isinstance(installed, TieredLookup)
        assert len(l1) == 1 and len(l2) == 1

    def test_hit_returns_owned_arrays(self):
        l1, l2 = MapCache(), SharedMapStore()
        tiered = TieredLookup([l1, l2])
        args = ("op", (np.arange(3),), {})
        tiered.memoize(*args, lambda: np.zeros(4))
        first = tiered.memoize(*args, lambda: np.zeros(4))
        first[:] = -1  # vandalize
        second = tiered.memoize(*args, lambda: np.zeros(4))
        assert np.array_equal(second, np.zeros(4))

    def test_rejects_empty_tier_list(self):
        with pytest.raises(ValueError):
            TieredLookup([None, None])


class TestDiskBudget:
    def _fill(self, store, n, size=512, start=0):
        keys = []
        for i in range(start, start + n):
            key = bytes([i, 0]) + b"k" * 14
            store.put(key, np.arange(size), "op")
            keys.append(key)
        return keys

    def _disk_bytes(self, cache_dir):
        return sum(p.stat().st_size for p in cache_dir.glob("*.map"))

    def test_spill_growth_is_bounded(self, tmp_path):
        """Regression: without a budget the spill directory grew without
        limit; with ``max_disk_bytes`` it stays under budget after every
        write, oldest entries evicted first."""
        cache_dir = tmp_path / "spill"
        probe = SharedMapStore(cache_dir=cache_dir)
        self._fill(probe, 1)
        entry_bytes = self._disk_bytes(cache_dir)
        for f in cache_dir.glob("*.map"):
            f.unlink()

        budget = int(entry_bytes * 4.5)  # room for 4 entries, not 12
        store = SharedMapStore(cache_dir=cache_dir, max_disk_bytes=budget)
        keys = self._fill(store, 12)
        assert self._disk_bytes(cache_dir) <= budget
        assert store.stats().extra["disk_evictions"] >= 8
        # The newest entries survive on disk; the oldest are gone.
        assert store._path(keys[-1]).is_file()
        assert not store._path(keys[0]).is_file()

    def test_evicted_key_is_a_miss_never_a_failure(self, tmp_path):
        cache_dir = tmp_path / "spill"
        store = SharedMapStore(max_entries=2, cache_dir=cache_dir,
                               max_disk_bytes=4096)
        keys = self._fill(store, 10, size=64)
        # Old key: evicted from memory (max_entries=2) and from disk.
        fresh = SharedMapStore(cache_dir=cache_dir, max_disk_bytes=4096)
        assert fresh.get(keys[0], "op") is None  # plain miss
        assert fresh.get(keys[-1], "op") is not None

    def test_disk_hit_refreshes_recency(self, tmp_path):
        """A disk hit must touch the file so the LRU spares reused
        entries across store instances."""
        cache_dir = tmp_path / "spill"
        store = SharedMapStore(cache_dir=cache_dir, max_disk_bytes=1 << 20)
        keys = self._fill(store, 3)
        old = store._path(keys[0])
        stamp = old.stat().st_mtime - 100
        os.utime(old, (stamp, stamp))
        reader = SharedMapStore(cache_dir=cache_dir, max_disk_bytes=1 << 20)
        assert reader.get(keys[0], "op") is not None
        assert old.stat().st_mtime > stamp + 50

    def test_unbounded_by_default(self, tmp_path):
        store = SharedMapStore(cache_dir=tmp_path / "spill")
        self._fill(store, 8)
        assert store.stats().extra["disk_evictions"] == 0
        assert len(list((tmp_path / "spill").glob("*.map"))) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            SharedMapStore(max_disk_bytes=0)

    def test_overwrite_does_not_inflate_estimate(self, tmp_path):
        """Regression: every put added the full file size to the running
        estimate, double-counting overwrites (os.replace reuses the file)
        — repeated puts of one key drifted the estimate upward until it
        crossed the budget and triggered a spurious O(files) rescan."""
        cache_dir = tmp_path / "spill"
        store = SharedMapStore(cache_dir=cache_dir, max_disk_bytes=1 << 20)
        key = bytes(16)
        store.put(key, np.arange(256), "op")
        first = store._disk_bytes_estimate
        assert first == self._disk_bytes(cache_dir)
        for _ in range(20):
            store.put(key, np.arange(256), "op")
        assert store._disk_bytes_estimate == first  # flat, not 21x
        assert store.stats().extra["disk_evictions"] == 0

    def test_overwrite_with_smaller_value_shrinks_estimate(self, tmp_path):
        cache_dir = tmp_path / "spill"
        store = SharedMapStore(cache_dir=cache_dir, max_disk_bytes=1 << 20)
        key = bytes(16)
        store.put(key, np.arange(4096), "op")
        store.put(key, np.arange(8), "op")
        assert store._disk_bytes_estimate == self._disk_bytes(cache_dir)


class TestSharedDirectory:
    """Several stores (processes) on one cache_dir: races and debris."""

    def _key(self, i):
        return bytes([i]) + bytes(15)

    def test_stale_tmp_from_dead_writer_swept_on_init(self, tmp_path):
        """Regression: a process killed between open() and os.replace()
        leaves `<digest>.map.tmp<pid>` debris that the *.map-filtered
        budget scan never sees — it accumulated unboundedly."""
        import subprocess
        import sys

        cache_dir = tmp_path / "spill"
        seed = SharedMapStore(cache_dir=cache_dir)
        seed.put(self._key(0), np.arange(8), "op")
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()  # a guaranteed-dead pid
        dead = cache_dir / (self._key(1).hex() + f".map.tmp{proc.pid}")
        dead.write_bytes(b"partial pickle debr")
        ours = cache_dir / (self._key(2).hex() + f".map.tmp{os.getpid()}")
        ours.write_bytes(b"in-flight write of a live process")
        SharedMapStore(cache_dir=cache_dir)  # init sweeps
        assert not dead.is_file()
        assert ours.is_file()  # live writers (us included) are never touched
        ours.unlink()

    def test_stale_tmp_swept_during_budget_rescan(self, tmp_path):
        import subprocess
        import sys

        cache_dir = tmp_path / "spill"
        cache_dir.mkdir()
        store = SharedMapStore(cache_dir=cache_dir, max_disk_bytes=4096)
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        dead = cache_dir / (self._key(9).hex() + f".map.tmp{proc.pid}")
        dead.write_bytes(b"debris")
        # Overflow the budget so _enforce_disk_budget rescans.
        for i in range(10):
            store.put(self._key(i), np.arange(512), "op")
        assert not dead.is_file()

    def test_evicted_by_other_store_is_plain_miss(self, tmp_path):
        """Two stores, one directory: B re-probing an entry that A's
        budget enforcement unlinked must count a miss — never an error,
        never a raise."""
        cache_dir = tmp_path / "spill"
        a = SharedMapStore(cache_dir=cache_dir, max_disk_bytes=1 << 20)
        a.put(self._key(0), np.arange(64), "op")
        b = SharedMapStore(cache_dir=cache_dir, max_disk_bytes=1 << 20)
        assert b.get(self._key(0), "op") is not None  # disk hit, promoted
        # A evicts it (simulate the budget unlink; same syscall path).
        os.unlink(a._path(self._key(0)))
        fresh = SharedMapStore(cache_dir=cache_dir, max_disk_bytes=1 << 20)
        assert fresh.get(self._key(0), "op") is None
        stats = fresh.stats()
        assert stats.misses == 1
        assert fresh.disk_errors == 0  # a vanished file is not corruption
        # B still serves its promoted in-memory copy.
        assert np.array_equal(b.get(self._key(0), "op"), np.arange(64))

    def test_utime_refresh_tolerates_concurrent_unlink(self, tmp_path, monkeypatch):
        """The disk-hit mtime refresh racing another worker's eviction:
        the value was already read, so the lookup stays a hit."""
        cache_dir = tmp_path / "spill"
        seed = SharedMapStore(cache_dir=cache_dir, max_disk_bytes=1 << 20)
        seed.put(self._key(3), np.arange(16), "op")
        reader = SharedMapStore(cache_dir=cache_dir, max_disk_bytes=1 << 20)

        def vanished(path, *args, **kwargs):
            raise FileNotFoundError(path)

        monkeypatch.setattr(os, "utime", vanished)
        value = reader.get(self._key(3), "op")
        assert np.array_equal(value, np.arange(16))
        assert reader.stats().hits == 1 and reader.disk_hits == 1
        assert reader.disk_errors == 0
