"""Unit tests for the worker pool and its stats merging.

The bit-identity story lives in ``tests/properties/test_prop_workers.py``;
here we pin the machinery itself: shard→worker placement, FIFO dispatch,
error propagation (a worker failure raises, never returns a wrong
answer), lifecycle idempotence, and the snapshot-merge algebra (counters
sum, rates recompute, flags keep-first).
"""

import pytest

from repro.cluster import EngineCluster
from repro.cluster.workers import WorkerPool, engine_spec, merge_snapshots
from repro.engine import SimRequest


def _spec(**overrides):
    base = dict(
        backends=("pointacc",), policy="fifo", map_cache="auto",
        l2=None, cache_dir=None, tile_cache=None,
        reuse_traces=True, overlap=False,
    )
    base.update(overrides)
    return engine_spec(**base)


class TestWorkerPool:
    def test_clamps_workers_to_shards(self):
        with WorkerPool(8, 2, _spec()) as pool:
            assert pool.n_workers == 2

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(0, 2, _spec())

    def test_run_window_executes_and_tags_runs(self):
        requests = [
            SimRequest("DGCNN", scale=0.05, seed=0),
            SimRequest("DGCNN", scale=0.05, seed=1),
        ]
        runs = [(0, [0]), (1, [1])]
        with WorkerPool(2, 2, _spec()) as pool:
            replies = dict(pool.run_window(runs, requests))
        assert set(replies) == {0, 1}
        for run_id, results in replies.items():
            (result,) = results
            assert result.request == requests[runs[run_id][1][0]]
            assert result.reports["pointacc"].total_seconds > 0

    def test_worker_exception_raises_with_traceback(self):
        # An unknown benchmark explodes inside the worker; the parent must
        # surface the remote traceback, not hang or fabricate a result.
        requests = [SimRequest("no-such-benchmark", scale=0.05, seed=0)]
        with WorkerPool(1, 1, _spec()) as pool:
            with pytest.raises(RuntimeError, match="shard worker 0 failed"):
                list(pool.run_window([(0, [0])], requests))

    def test_stats_one_payload_per_worker(self):
        requests = [SimRequest("DGCNN", scale=0.05, seed=0)]
        with WorkerPool(2, 4, _spec()) as pool:
            list(pool.run_window([(2, [0])], requests))
            payloads = pool.stats()
        assert len(payloads) == 2
        # Worker 0 hosts shards {0, 2}, worker 1 hosts {1, 3}.
        assert sorted(payloads[0]["shards"]) == [0, 2]
        assert sorted(payloads[1]["shards"]) == [1, 3]
        assert payloads[0]["shards"][2]["requests"] == 1
        assert payloads[1]["shards"][1]["requests"] == 0

    def test_close_is_idempotent_and_blocks_dispatch(self):
        pool = WorkerPool(1, 1, _spec())
        pool.close()
        pool.close()  # second close is a no-op
        assert pool.stats() == []
        with pytest.raises(RuntimeError, match="closed"):
            list(pool.run_window([(0, [0])], [SimRequest("DGCNN")]))


class TestClusterWorkerMode:
    def test_cluster_close_idempotent(self):
        cluster = EngineCluster(n_shards=2, workers=2)
        cluster.run_batch([SimRequest("DGCNN", scale=0.05, seed=0)])
        cluster.close()
        cluster.close()

    def test_in_process_cluster_close_is_noop(self):
        cluster = EngineCluster(n_shards=2)
        cluster.close()
        # Still serves after close: nothing to shut down in-process.
        results = cluster.run_batch([SimRequest("DGCNN", scale=0.05, seed=0)])
        assert results[0].reports["pointacc"].total_seconds > 0

    def test_worker_stats_merge_covers_all_shards(self):
        with EngineCluster(n_shards=4, workers=2, routing="affinity") as cluster:
            cluster.run_batch([
                SimRequest("DGCNN", scale=0.05, seed=s) for s in range(4)
            ])
            stats = cluster.stats()
        assert stats.workers == 2
        assert len(stats.shards) == 4
        assert sum(s["requests"] for s in stats.shards) == 4
        assert stats.l2.get("lookups", 0) > 0


class TestMergeSnapshots:
    def test_counters_sum_and_rates_recompute(self):
        merged = merge_snapshots([
            {"hits": 3, "lookups": 4, "hit_rate": 0.75, "persistent": False},
            {"hits": 1, "lookups": 4, "hit_rate": 0.25, "persistent": False},
        ])
        assert merged["hits"] == 4
        assert merged["lookups"] == 8
        assert merged["hit_rate"] == pytest.approx(0.5)
        assert merged["persistent"] is False  # flag, not a counter

    def test_nested_dicts_merge_recursively(self):
        merged = merge_snapshots([
            {"by_op": {"knn": {"hits": 1, "misses": 2}}},
            {"by_op": {"knn": {"hits": 2, "misses": 0},
                       "fps": {"hits": 5, "misses": 1}}},
        ])
        assert merged["by_op"]["knn"] == {"hits": 3, "misses": 2}
        assert merged["by_op"]["fps"] == {"hits": 5, "misses": 1}

    def test_zero_lookup_rates_and_empty_input(self):
        assert merge_snapshots([]) == {}
        assert merge_snapshots([{}, {}]) == {}
        merged = merge_snapshots([{"hits": 0, "lookups": 0, "hit_rate": 0.0}])
        assert merged["hit_rate"] == 0.0

    def test_tile_and_cross_rates(self):
        merged = merge_snapshots([
            {"tile_hits": 2, "tile_lookups": 4, "tile_hit_rate": 0.5,
             "cross_hits": 1, "lookups": 10, "cross_hit_rate": 0.1},
            {"tile_hits": 2, "tile_lookups": 4, "tile_hit_rate": 0.5,
             "cross_hits": 3, "lookups": 10, "cross_hit_rate": 0.3},
        ])
        assert merged["tile_hit_rate"] == pytest.approx(0.5)
        assert merged["cross_hit_rate"] == pytest.approx(0.2)
