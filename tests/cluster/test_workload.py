"""Workload construction: JSONL request files and the synthetic stream."""

import pytest

from repro.cluster import WorkloadError, load_requests, synthetic_stream
from repro.engine import SimRequest


def _write(tmp_path, text):
    path = tmp_path / "requests.jsonl"
    path.write_text(text)
    return path


class TestLoadRequests:
    def test_full_and_minimal_lines(self, tmp_path):
        path = _write(tmp_path, "\n".join([
            "# warm pool",
            '{"benchmark": "PointNet++(c)"}',
            "",
            '{"benchmark": "DGCNN", "scale": 0.5, "seed": 2, "priority": 1,'
            ' "tag": "x", "tenant": "acme", "deadline_ms": 40.5}',
        ]))
        reqs = load_requests(path)
        assert reqs[0] == SimRequest("PointNet++(c)")
        assert reqs[1] == SimRequest("DGCNN", scale=0.5, seed=2, priority=1,
                                     tag="x", tenant="acme", deadline_ms=40.5)

    def test_null_deadline_means_none(self, tmp_path):
        path = _write(tmp_path,
                      '{"benchmark": "PointNet", "deadline_ms": null}')
        assert load_requests(path)[0].deadline_ms is None

    @pytest.mark.parametrize("payload,fragment", [
        ('{"benchmark": "PointNet"', "malformed JSON"),
        ('["PointNet"]', "expected a JSON object"),
        ('{"scale": 0.5}', "missing required field 'benchmark'"),
        ('{"benchmark": "AlexNet"}', "unknown benchmark"),
        ('{"benchmark": "PointNet", "gpu": true}', "unknown request field"),
        ('{"benchmark": "PointNet", "scale": "big"}', "field 'scale' has type"),
        ('{"benchmark": "PointNet", "scale": true}', "field 'scale' has type"),
        ('{"benchmark": "PointNet", "seed": false}', "field 'seed' has type"),
    ])
    def test_malformed_lines_name_the_line(self, tmp_path, payload, fragment):
        path = _write(tmp_path, '{"benchmark": "PointNet"}\n' + payload)
        with pytest.raises(WorkloadError) as err:
            load_requests(path)
        assert fragment in str(err.value)
        assert ":2" in str(err.value)  # the offending line number

    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError, match="cannot read"):
            load_requests(tmp_path / "absent.jsonl")

    def test_empty_file(self, tmp_path):
        with pytest.raises(WorkloadError, match="no requests"):
            load_requests(_write(tmp_path, "# only comments\n"))


class TestSyntheticStream:
    def test_cycles_everything(self):
        reqs = list(synthetic_stream(["A-bench", "B-bench"], 6, scale=0.1,
                                     seed_pool=2, tenant_pool=3,
                                     deadline_ms=9.0))
        assert len(reqs) == 6
        assert [r.benchmark for r in reqs[:2]] == ["A-bench", "B-bench"]
        assert {r.seed for r in reqs} == {0, 1}
        assert {r.tenant for r in reqs} == {"tenantA", "tenantB", "tenantC"}
        assert all(r.deadline_ms == 9.0 for r in reqs)
        assert reqs[3].tag == "req3"

    def test_rejects_bad_pools(self):
        with pytest.raises(WorkloadError):
            list(synthetic_stream(["A"], 2, seed_pool=0))
        with pytest.raises(WorkloadError):
            list(synthetic_stream(["A"], 2, tenant_pool=0))
