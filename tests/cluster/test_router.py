"""Shard routing: determinism, affinity, balance."""

import pytest

from repro.cluster import ROUTING_MODES, ShardRouter
from repro.engine import SimRequest


def _mixed(n=12):
    return [
        SimRequest("PointNet++(c)" if i % 2 else "DGCNN", scale=0.1, seed=i % 3)
        for i in range(n)
    ]


class TestAffinity:
    def test_equal_workloads_colocate(self):
        router = ShardRouter(4, mode="affinity")
        a = SimRequest("PointNet++(c)", scale=0.1, seed=0, priority=3)
        b = SimRequest("PointNet++(c)", scale=0.1, seed=0, tag="other")
        assert router.route(a) == router.route(b)  # priority/tag irrelevant

    def test_routing_is_content_hash_not_python_hash(self):
        # Same placement for every router instance (and across processes:
        # BLAKE2b of the workload key, not randomized str hashing).
        placements = [
            [ShardRouter(4).route(r) for r in _mixed()] for _ in range(2)
        ]
        assert placements[0] == placements[1]

    def test_distinct_seeds_can_land_apart(self):
        router = ShardRouter(4, mode="affinity")
        shards = {router.route(SimRequest("PointNet++(c)", scale=0.1, seed=s))
                  for s in range(16)}
        assert len(shards) > 1

    def test_counts_track_placements(self):
        router = ShardRouter(2, mode="affinity")
        for r in _mixed(6):
            router.route(r)
        snap = router.snapshot()
        assert sum(snap["counts"]) == 6
        assert snap["mode"] == "affinity"


class TestLeastLoaded:
    def test_balances_equal_work(self):
        router = ShardRouter(3, mode="least-loaded")
        reqs = [SimRequest("PointNet++(c)", scale=0.1, seed=i) for i in range(9)]
        for r in reqs:
            router.route(r)
        assert router.counts == [3, 3, 3]

    def test_first_request_goes_to_shard_zero(self):
        router = ShardRouter(4, mode="least-loaded")
        assert router.route(SimRequest("DGCNN", scale=0.1)) == 0

    def test_bigger_clouds_weigh_more(self):
        router = ShardRouter(2, mode="least-loaded")
        router.route(SimRequest("MinkNet(o)", scale=0.2))   # big -> shard 0
        nxt = [router.route(SimRequest("PointNet++(c)", scale=0.1, seed=s))
               for s in range(2)]
        assert nxt[0] == 1  # the small ones pile onto the idle shard first


class TestValidation:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            ShardRouter(0)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            ShardRouter(2, mode="round-robin")

    def test_modes_constant(self):
        assert set(ROUTING_MODES) == {"affinity", "least-loaded"}
