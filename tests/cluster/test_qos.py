"""QoS layer: admission, EDF + fair-share ordering, deadline accounting."""

from repro.cluster import QoSScheduler
from repro.engine import SimRequest


def _req(tenant="t", deadline=None, priority=0):
    return SimRequest("PointNet++(c)", scale=0.1, tenant=tenant,
                      deadline_ms=deadline, priority=priority)


class TestAdmission:
    def test_no_deadline_admits(self):
        assert QoSScheduler().admit(_req()) is None

    def test_positive_budget_admits(self):
        assert QoSScheduler().admit(_req(deadline=5.0)) is None

    def test_spent_budget_rejects_with_reason(self):
        qos = QoSScheduler()
        reason = qos.admit(_req(deadline=0.0))
        assert reason is not None and "deadline" in reason
        assert qos.tenants["t"].rejected == 1

    def test_negative_budget_rejects(self):
        assert QoSScheduler().admit(_req(deadline=-3)) is not None


class TestOrdering:
    def test_earliest_deadline_first(self):
        qos = QoSScheduler()
        reqs = [_req(deadline=50), _req(deadline=5), _req(deadline=None)]
        assert qos.order(reqs, [0, 1, 2]) == [1, 0, 2]

    def test_fair_share_pushes_heavy_tenant_back(self):
        qos = QoSScheduler()
        qos.record(_req(tenant="hog"), elapsed_seconds=0.0, modeled_seconds=9.0)
        reqs = [_req(tenant="hog"), _req(tenant="quiet")]
        assert qos.order(reqs, [0, 1]) == [1, 0]

    def test_priority_breaks_remaining_ties(self):
        qos = QoSScheduler()
        reqs = [_req(priority=0), _req(priority=5)]
        assert qos.order(reqs, [0, 1]) == [1, 0]

    def test_equal_everything_keeps_submission_order(self):
        qos = QoSScheduler()
        reqs = [_req(), _req(), _req()]
        assert qos.order(reqs, [0, 1, 2]) == [0, 1, 2]

    def test_deadlines_outrank_priority(self):
        qos = QoSScheduler()
        reqs = [_req(priority=9), _req(deadline=10, priority=0)]
        assert qos.order(reqs, [0, 1]) == [1, 0]


class TestAccounting:
    def test_deadline_scored_on_completion(self):
        qos = QoSScheduler()
        assert qos.record(_req(deadline=1000), 0.5, 0.0) is True
        assert qos.record(_req(deadline=1000), 1.5, 0.0) is False
        acct = qos.tenants["t"]
        assert acct.deadline_met == 1 and acct.deadline_missed == 1

    def test_no_deadline_not_scored(self):
        qos = QoSScheduler()
        assert qos.record(_req(), 10.0, 0.1) is None
        acct = qos.tenants["t"]
        assert acct.deadline_met == acct.deadline_missed == 0
        assert acct.modeled_seconds == 0.1

    def test_summary_sorted_by_tenant(self):
        qos = QoSScheduler()
        for tenant in ("zeta", "alpha"):
            qos.admit(_req(tenant=tenant))
        assert list(qos.summary()) == ["alpha", "zeta"]
