"""QoS layer: admission, EDF + fair-share ordering, deadline accounting."""

from repro.cluster import QoSScheduler
from repro.engine import SimRequest


def _req(tenant="t", deadline=None, priority=0):
    return SimRequest("PointNet++(c)", scale=0.1, tenant=tenant,
                      deadline_ms=deadline, priority=priority)


class TestAdmission:
    def test_no_deadline_admits(self):
        assert QoSScheduler().admit(_req()) is None

    def test_positive_budget_admits(self):
        assert QoSScheduler().admit(_req(deadline=5.0)) is None

    def test_spent_budget_rejects_with_reason(self):
        qos = QoSScheduler()
        reason = qos.admit(_req(deadline=0.0))
        assert reason is not None and "deadline" in reason
        assert qos.tenants["t"].rejected == 1

    def test_negative_budget_rejects(self):
        assert QoSScheduler().admit(_req(deadline=-3)) is not None


class TestOrdering:
    def test_earliest_deadline_first(self):
        qos = QoSScheduler()
        reqs = [_req(deadline=50), _req(deadline=5), _req(deadline=None)]
        assert qos.order(reqs, [0, 1, 2]) == [1, 0, 2]

    def test_fair_share_pushes_heavy_tenant_back(self):
        qos = QoSScheduler()
        qos.record(_req(tenant="hog"), elapsed_seconds=0.0, modeled_seconds=9.0)
        reqs = [_req(tenant="hog"), _req(tenant="quiet")]
        assert qos.order(reqs, [0, 1]) == [1, 0]

    def test_priority_breaks_remaining_ties(self):
        qos = QoSScheduler()
        reqs = [_req(priority=0), _req(priority=5)]
        assert qos.order(reqs, [0, 1]) == [1, 0]

    def test_equal_everything_keeps_submission_order(self):
        qos = QoSScheduler()
        reqs = [_req(), _req(), _req()]
        assert qos.order(reqs, [0, 1, 2]) == [0, 1, 2]

    def test_deadlines_outrank_priority(self):
        qos = QoSScheduler()
        reqs = [_req(priority=9), _req(deadline=10, priority=0)]
        assert qos.order(reqs, [0, 1]) == [1, 0]


class TestAccounting:
    def test_deadline_scored_on_completion(self):
        qos = QoSScheduler()
        assert qos.record(_req(deadline=1000), 0.5, 0.0) is True
        assert qos.record(_req(deadline=1000), 1.5, 0.0) is False
        acct = qos.tenants["t"]
        assert acct.deadline_met == 1 and acct.deadline_missed == 1

    def test_no_deadline_not_scored(self):
        qos = QoSScheduler()
        assert qos.record(_req(), 10.0, 0.1) is None
        acct = qos.tenants["t"]
        assert acct.deadline_met == acct.deadline_missed == 0
        assert acct.modeled_seconds == 0.1

    def test_summary_sorted_by_tenant(self):
        qos = QoSScheduler()
        for tenant in ("zeta", "alpha"):
            qos.admit(_req(tenant=tenant))
        assert list(qos.summary()) == ["alpha", "zeta"]


class TestStarvation:
    def test_light_tenant_progresses_under_sustained_heavy_load(self):
        """Starvation regression for the fairness bound documented on
        :class:`QoSScheduler`: a low-share tenant submitting one request
        per window against a heavy tenant's nine keeps being dispatched
        *first in its deadline class* in every window it participates in,
        for as long as the load lasts — its queueing delay is bounded by
        earlier deadline classes, never by the heavy tenant's volume."""
        qos = QoSScheduler()
        light_first_positions = []
        for _ in range(30):  # sustained 9:1 load, window after window
            window = [_req(tenant="heavy") for _ in range(9)]
            window.append(_req(tenant="light"))
            order = qos.order(window, list(range(len(window))))
            light_first_positions.append(order.index(9))
            # Completion accounting: the heavy tenant consumes ~9x the
            # modeled backend time each window.
            for i in order:
                qos.record(window[i], elapsed_seconds=0.01,
                           modeled_seconds=0.1)
        # Window 1: all balances are zero, so plain submission order holds
        # (light submitted last).  From then on the light tenant's balance
        # is strictly the smallest in the (single) deadline class, and it
        # runs first in every single window.
        assert light_first_positions[0] == 9
        assert light_first_positions[1:] == [0] * 29
        assert qos.tenants["light"].modeled_seconds < \
            qos.tenants["heavy"].modeled_seconds / 8

    def test_light_tenant_first_within_its_deadline_class(self):
        """The bound is per deadline class: an earlier deadline still wins
        (EDF), but among equal deadlines the light tenant precedes every
        heavy request."""
        qos = QoSScheduler()
        # Pre-load the heavy tenant's balance.
        qos.record(_req(tenant="heavy"), 0.0, 5.0)
        window = [
            _req(tenant="heavy", deadline=10.0),   # earlier class: wins
            _req(tenant="heavy", deadline=50.0),
            _req(tenant="heavy", deadline=50.0),
            _req(tenant="light", deadline=50.0),
        ]
        assert qos.order(window, [0, 1, 2, 3]) == [0, 3, 1, 2]
