"""Tests for the three kernel-mapping algorithms (paper Fig. 9)."""

import numpy as np
import pytest

from repro.mapping import (
    kernel_map,
    kernel_map_bruteforce,
    kernel_map_hash,
    kernel_map_mergesort,
)
from repro.pointcloud.coords import kernel_offsets


@pytest.fixture
def small_tensor(indoor_cloud):
    return indoor_cloud.voxelize(0.2)


class TestAgreement:
    def test_submanifold_all_algorithms_agree(self, small_tensor):
        coords = small_tensor.coords
        ref = kernel_map_bruteforce(coords, coords, 3, 1)
        for algo in (kernel_map_hash, kernel_map_mergesort):
            assert algo(coords, coords, 3, 1).as_set() == ref.as_set()

    def test_strided_all_algorithms_agree(self, small_tensor):
        coords = small_tensor.coords
        out = small_tensor.downsample(2).coords
        ref = kernel_map_bruteforce(coords, out, 2, 1)
        for algo in (kernel_map_hash, kernel_map_mergesort):
            assert algo(coords, out, 2, 1).as_set() == ref.as_set()

    def test_explicit_offsets_agree(self, small_tensor):
        coords = small_tensor.coords
        out = small_tensor.downsample(2).coords
        offsets = -kernel_offsets(2, 3)  # transposed-conv relation
        ref = kernel_map_bruteforce(out, coords, offsets=offsets)
        got = kernel_map_mergesort(out, coords, offsets=offsets)
        assert got.as_set() == ref.as_set()


class TestSemantics:
    def test_center_offset_yields_identity_maps(self, small_tensor):
        coords = small_tensor.coords
        maps = kernel_map_mergesort(coords, coords, 3, 1)
        center_w = 13  # offset (0,0,0) in the 27-neighborhood
        center = [
            (i, o) for i, o, w in zip(
                maps.in_idx, maps.out_idx, maps.weight_idx
            ) if w == center_w
        ]
        assert len(center) == small_tensor.n
        assert all(i == o for i, o in center)

    def test_maps_satisfy_offset_relation(self, small_tensor):
        coords = small_tensor.coords
        out = small_tensor.downsample(2).coords
        offsets = kernel_offsets(2, 3) * small_tensor.tensor_stride
        maps = kernel_map_mergesort(coords, out, 2, 1)
        for i, o, w in zip(maps.in_idx, maps.out_idx, maps.weight_idx):
            assert np.array_equal(coords[i], out[o] + offsets[w])

    def test_every_output_has_at_least_one_map_when_downsampling(
        self, small_tensor
    ):
        out = small_tensor.downsample(2)
        maps = kernel_map_mergesort(
            small_tensor.coords, out.coords, 2, small_tensor.tensor_stride
        )
        covered = set(maps.out_idx.tolist())
        # Every output voxel was created by quantizing at least one input.
        assert covered == set(range(out.n))

    def test_no_duplicate_maps(self, small_tensor):
        coords = small_tensor.coords
        maps = kernel_map_mergesort(coords, coords, 3, 1)
        assert len(maps.as_set()) == maps.n_maps

    def test_empty_output_cloud(self):
        coords = np.array([[0, 0, 0], [1, 1, 1]])
        maps = kernel_map_mergesort(coords, np.empty((0, 3), dtype=np.int64))
        assert maps.n_maps == 0
        assert maps.kernel_volume == 27

    def test_disjoint_clouds_have_no_maps(self):
        a = np.array([[0, 0, 0]])
        b = np.array([[100, 100, 100]])
        maps = kernel_map_mergesort(a, b, 3, 1)
        assert maps.n_maps == 0

    def test_stride_scales_offsets(self):
        # Input at stride 2: neighbors are 2 apart, not 1.
        coords = np.array([[0, 0, 0], [2, 0, 0]])
        out = np.array([[0, 0, 0]])
        maps = kernel_map_mergesort(coords, out, 3, tensor_stride=2)
        assert (0, 0) in {(i, o) for i, o in zip(maps.in_idx, maps.out_idx)}
        assert maps.n_maps == 2  # both inputs are in-reach at stride 2

    def test_dispatcher(self, small_tensor):
        coords = small_tensor.coords
        got = kernel_map(coords, coords, algorithm="hash")
        assert got.n_maps > 0
        with pytest.raises(ValueError):
            kernel_map(coords, coords, algorithm="quantum")

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            kernel_map_mergesort(np.zeros((2, 3)), np.zeros((2, 2)))

    def test_bad_offsets_shape_raises(self):
        with pytest.raises(ValueError):
            kernel_map_mergesort(
                np.zeros((2, 3), dtype=int),
                np.zeros((2, 3), dtype=int),
                offsets=np.zeros((4, 2), dtype=int),
            )


class TestSubmanifoldProperty:
    def test_outputs_never_dilate(self, small_tensor):
        """Section 3: 'the nonzero points will never dilate' - submanifold
        conv outputs sit exactly on the input cloud."""
        coords = small_tensor.coords
        maps = kernel_map_mergesort(coords, coords, 3, 1)
        assert maps.out_idx.max() < small_tensor.n
        assert maps.in_idx.max() < small_tensor.n

    def test_map_count_bounded_by_kernel_volume(self, small_tensor):
        coords = small_tensor.coords
        maps = kernel_map_mergesort(coords, coords, 3, 1)
        assert maps.n_maps <= 27 * small_tensor.n
        per_out = maps.maps_per_output(small_tensor.n)
        assert per_out.max() <= 27
        assert per_out.min() >= 1  # center offset always hits
