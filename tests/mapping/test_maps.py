"""Tests for the MapTable structure."""

import numpy as np
import pytest

from repro.mapping import MapTable


@pytest.fixture
def table():
    return MapTable(
        in_idx=np.array([0, 3, 1, 0, 1, 2, 3, 4, 3, 1, 4]),
        out_idx=np.array([1, 4, 3, 0, 1, 2, 3, 4, 1, 0, 3]),
        weight_idx=np.array([0, 0, 1, 4, 4, 4, 4, 4, 6, 8, 8]),
        kernel_volume=9,
    )


class TestMapTable:
    def test_n_maps(self, table):
        assert table.n_maps == 11

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            MapTable(np.array([0]), np.array([0, 1]), np.array([0]), 1)

    def test_sort_by_weight_groups_contiguously(self, table):
        s = table.sorted_by(by="weight")
        assert np.all(np.diff(s.weight_idx) >= 0)
        assert s.as_set() == table.as_set()

    def test_sort_by_output(self, table):
        s = table.sorted_by(by="output")
        assert np.all(np.diff(s.out_idx) >= 0)
        assert s.as_set() == table.as_set()

    def test_sort_invalid_key(self, table):
        with pytest.raises(ValueError):
            table.sorted_by(by="input")

    def test_per_weight_partition(self, table):
        groups = table.per_weight()
        weights = [w for w, _, _ in groups]
        assert weights == sorted(set(table.weight_idx.tolist()))
        total = sum(len(i) for _, i, _ in groups)
        assert total == table.n_maps
        # Reconstruct the full set from the groups.
        rebuilt = set()
        for w, ins, outs in groups:
            rebuilt |= {(int(i), int(o), w) for i, o in zip(ins, outs)}
        assert rebuilt == table.as_set()

    def test_per_weight_empty(self):
        empty = MapTable(np.empty(0), np.empty(0), np.empty(0), 27)
        assert empty.per_weight() == []

    def test_maps_per_output(self, table):
        counts = table.maps_per_output(5)
        assert counts.sum() == table.n_maps
        assert counts[1] == 3  # outputs 1 appears three times

    def test_maps_per_input(self, table):
        counts = table.maps_per_input(5)
        assert counts.sum() == table.n_maps
        assert counts[0] == 2

    def test_kernel_volume_validated(self):
        with pytest.raises(ValueError):
            MapTable(np.array([0]), np.array([0]), np.array([0]), 0)
