"""Tests for FPS, kNN and ball query reference implementations."""

import numpy as np
import pytest

from repro.mapping import (
    ball_query_indices,
    ball_query_maps,
    farthest_point_sampling,
    knn_indices,
    knn_maps,
    random_sampling,
)
from repro.pointcloud.coords import pairwise_squared_distance


class TestFPS:
    def test_first_sample_is_start_index(self, rng):
        pts = rng.random((50, 3))
        idx = farthest_point_sampling(pts, 5, start_index=7)
        assert idx[0] == 7

    def test_samples_unique(self, rng):
        pts = rng.random((100, 3))
        idx = farthest_point_sampling(pts, 40)
        assert len(set(idx.tolist())) == 40

    def test_greedy_invariant(self, rng):
        """Each selected point is the arg-max of distance-to-selected-set."""
        pts = rng.random((60, 3))
        idx = farthest_point_sampling(pts, 10)
        for t in range(1, 10):
            selected = pts[idx[:t]]
            dists = pairwise_squared_distance(pts, selected).min(axis=1)
            assert np.isclose(dists[idx[t]], dists.max())

    def test_second_point_is_farthest_from_first(self, rng):
        pts = rng.random((80, 3))
        idx = farthest_point_sampling(pts, 2)
        d = ((pts - pts[idx[0]]) ** 2).sum(axis=1)
        assert idx[1] == int(np.argmax(d))

    def test_oversampling_clamps(self, rng):
        pts = rng.random((10, 3))
        idx = farthest_point_sampling(pts, 50)
        assert len(idx) == 10

    def test_coverage_beats_random(self, rng):
        """FPS spreads samples: max gap to nearest sample is smaller than
        for random sampling (the reason PointNet++ uses it)."""
        pts = rng.random((400, 3))
        fps_idx = farthest_point_sampling(pts, 32)
        rand_idx = random_sampling(400, 32, seed=0)
        gap_fps = pairwise_squared_distance(pts, pts[fps_idx]).min(axis=1).max()
        gap_rand = pairwise_squared_distance(pts, pts[rand_idx]).min(axis=1).max()
        assert gap_fps <= gap_rand

    def test_errors(self, rng):
        pts = rng.random((5, 3))
        with pytest.raises(ValueError):
            farthest_point_sampling(np.empty((0, 3)), 1)
        with pytest.raises(ValueError):
            farthest_point_sampling(pts, 0)
        with pytest.raises(ValueError):
            farthest_point_sampling(pts, 2, start_index=9)


class TestRandomSampling:
    def test_deterministic_given_seed(self):
        a = random_sampling(100, 20, seed=3)
        b = random_sampling(100, 20, seed=3)
        assert np.array_equal(a, b)

    def test_unique_and_sorted(self):
        idx = random_sampling(50, 30, seed=1)
        assert len(set(idx.tolist())) == 30
        assert np.all(np.diff(idx) > 0)


class TestKNN:
    def test_matches_naive(self, rng):
        q = rng.random((15, 3))
        r = rng.random((40, 3))
        idx, dist = knn_indices(q, r, 5)
        sq = pairwise_squared_distance(q, r)
        for row in range(15):
            naive = np.lexsort((np.arange(40), sq[row]))[:5]
            assert idx[row].tolist() == naive.tolist()
            assert np.allclose(dist[row], sq[row][naive])

    def test_distances_ascending(self, rng):
        q = rng.random((10, 3))
        r = rng.random((100, 3))
        _, dist = knn_indices(q, r, 8)
        assert np.all(np.diff(dist, axis=1) >= 0)

    def test_pads_when_too_few_references(self, rng):
        q = rng.random((4, 3))
        r = rng.random((3, 3))
        idx, _ = knn_indices(q, r, 5)
        assert idx.shape == (4, 5)
        assert np.array_equal(idx[:, 3], idx[:, 0])

    def test_self_query_returns_self_first(self, rng):
        pts = rng.random((30, 3))
        idx, dist = knn_indices(pts, pts, 3)
        assert np.array_equal(idx[:, 0], np.arange(30))
        assert np.allclose(dist[:, 0], 0.0)

    def test_maps_structure(self, rng):
        q = rng.random((6, 3))
        r = rng.random((20, 3))
        maps = knn_maps(q, r, 4)
        assert maps.n_maps == 24
        assert maps.kernel_volume == 4
        # Weight index is the neighbor rank.
        assert maps.weight_idx.tolist() == [0, 1, 2, 3] * 6

    def test_k_validation(self, rng):
        with pytest.raises(ValueError):
            knn_indices(rng.random((2, 3)), rng.random((5, 3)), 0)


class TestBallQuery:
    def test_respects_radius(self, rng):
        q = rng.random((10, 3))
        r = rng.random((200, 3))
        idx = ball_query_indices(q, r, 0.25, 8)
        sq = pairwise_squared_distance(q, r)
        for row in range(10):
            group = idx[row]
            # All non-fallback members within radius, OR the whole group is
            # the nearest-point fallback.
            in_r = sq[row][group] <= 0.25**2
            if not in_r.all():
                nearest = np.lexsort((np.arange(200), sq[row]))[0]
                assert set(group.tolist()) <= {nearest} | set(
                    np.flatnonzero(sq[row] <= 0.25**2).tolist()
                )

    def test_pads_with_first_neighbor(self, rng):
        q = np.array([[0.0, 0.0, 0.0]])
        r = np.array([[0.01, 0.0, 0.0], [0.02, 0.0, 0.0], [9.0, 9.0, 9.0]])
        idx = ball_query_indices(q, r, 0.1, 5)
        assert idx[0].tolist() == [0, 1, 0, 0, 0]

    def test_fallback_when_nothing_in_radius(self, rng):
        q = np.array([[0.0, 0.0, 0.0]])
        r = np.array([[5.0, 0.0, 0.0], [9.0, 0.0, 0.0]])
        idx = ball_query_indices(q, r, 0.1, 3)
        assert idx[0].tolist() == [0, 0, 0]  # nearest point repeated

    def test_subset_of_knn(self, rng):
        """Ball query = kNN restricted to the radius (paper Table 1)."""
        q = rng.random((12, 3))
        r = rng.random((100, 3))
        knn_idx, knn_dist = knn_indices(q, r, 16)
        bq_idx = ball_query_indices(q, r, 0.3, 16)
        for row in range(12):
            within = set(knn_idx[row][knn_dist[row] <= 0.09].tolist())
            if within:
                assert set(bq_idx[row].tolist()) <= within

    def test_maps_group_sizes_constant(self, rng):
        maps = ball_query_maps(rng.random((7, 3)), rng.random((50, 3)), 0.4, 6)
        counts = maps.maps_per_output(7)
        assert np.all(counts == 6)

    def test_validation(self, rng):
        q, r = rng.random((2, 3)), rng.random((5, 3))
        with pytest.raises(ValueError):
            ball_query_indices(q, r, -1.0, 4)
        with pytest.raises(ValueError):
            ball_query_indices(q, r, 0.5, 0)
