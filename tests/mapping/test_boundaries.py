"""Boundary conditions and array-ownership contracts of the mapping ops.

Locks in the documented padding / tie-break / clamping semantics at the
edges of each op's domain, plus the ownership contract the map cache relies
on: mapping ops never mutate caller arrays, and every returned array is
freshly owned (no views of inputs or internals) — so a caller scribbling on
a result can corrupt neither its own inputs nor a cache entry.
"""

import numpy as np
import pytest

from repro.engine import MapCache
from repro.mapping import (
    ball_query_indices,
    farthest_point_sampling,
    knn_indices,
    random_sampling,
    use_map_cache,
)


class TestKnnBoundaries:
    def test_k_greater_than_n_ref_pads_with_nearest(self):
        queries = np.array([[0.0, 0.0, 0.0], [5.0, 0.0, 0.0]])
        refs = np.array([[1.0, 0.0, 0.0], [4.0, 0.0, 0.0]])
        idx, dist = knn_indices(queries, refs, k=5)
        assert idx.shape == dist.shape == (2, 5)
        # First k_eff columns are the real neighbors, distance-ascending...
        assert idx[0, :2].tolist() == [0, 1]
        assert idx[1, :2].tolist() == [1, 0]
        # ...and the pad columns repeat the *nearest* neighbor and distance.
        assert np.all(idx[:, 2:] == idx[:, :1])
        assert np.all(dist[:, 2:] == dist[:, :1])

    def test_k_equals_n_ref_has_no_padding(self):
        queries = np.zeros((1, 3))
        refs = np.array([[1.0, 0, 0], [2.0, 0, 0]])
        idx, _ = knn_indices(queries, refs, k=2)
        assert idx[0].tolist() == [0, 1]

    def test_equidistant_ties_break_toward_lower_index(self):
        queries = np.zeros((1, 3))
        refs = np.array([[1.0, 0, 0], [-1.0, 0, 0], [0, 1.0, 0]])  # all r=1
        idx, dist = knn_indices(queries, refs, k=3)
        assert idx[0].tolist() == [0, 1, 2]
        assert np.allclose(dist, 1.0)

    def test_single_reference_single_query(self):
        idx, dist = knn_indices(np.zeros((1, 3)), np.ones((1, 3)), k=3)
        assert idx[0].tolist() == [0, 0, 0]
        assert np.allclose(dist, 3.0)

    def test_rejects_empty_references_and_bad_k(self):
        with pytest.raises(ValueError):
            knn_indices(np.zeros((1, 3)), np.zeros((0, 3)), k=1)
        with pytest.raises(ValueError):
            knn_indices(np.zeros((1, 3)), np.zeros((1, 3)), k=0)


class TestFpsBoundaries:
    def test_n_samples_greater_than_n_clamps_to_permutation(self):
        points = np.random.default_rng(0).normal(size=(7, 3))
        selected = farthest_point_sampling(points, n_samples=100)
        assert len(selected) == 7
        assert sorted(selected.tolist()) == list(range(7))

    def test_single_point_cloud(self):
        assert farthest_point_sampling(np.zeros((1, 3)), 5).tolist() == [0]

    def test_start_index_respected_at_boundary(self):
        points = np.arange(12, dtype=np.float64).reshape(4, 3)
        selected = farthest_point_sampling(points, 2, start_index=3)
        assert selected[0] == 3
        assert selected[1] == 0  # farthest from point 3 is point 0

    def test_random_sampling_clamps(self):
        assert len(random_sampling(5, 100, seed=0)) == 5


class TestBallQueryBoundaries:
    def test_zero_in_radius_neighbors_fall_back_to_nearest(self):
        queries = np.array([[100.0, 0.0, 0.0]])
        refs = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        idx = ball_query_indices(queries, refs, radius=0.5, k=4)
        # Nothing within radius: every slot repeats the nearest ref (index 1).
        assert idx.shape == (1, 4)
        assert np.all(idx == 1)

    def test_partial_fill_pads_with_first_neighbor(self):
        queries = np.zeros((1, 3))
        refs = np.array([[0.1, 0, 0], [0.2, 0, 0], [9.0, 0, 0]])
        idx = ball_query_indices(queries, refs, radius=1.0, k=4)
        assert idx[0].tolist() == [0, 1, 0, 0]  # 2 in radius, padded with #0

    def test_k_greater_than_n_ref_pads(self):
        queries = np.zeros((1, 3))
        refs = np.array([[0.1, 0, 0]])
        idx = ball_query_indices(queries, refs, radius=1.0, k=3)
        assert idx[0].tolist() == [0, 0, 0]

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError):
            ball_query_indices(np.zeros((1, 3)), np.ones((1, 3)), 0.0, 1)


def _frozen(arr):
    """A read-only copy: any in-place write inside the callee raises."""
    out = arr.copy()
    out.setflags(write=False)
    return out


class TestOwnershipContracts:
    """Regression tests for the never-mutate / owned-result guarantees."""

    @pytest.fixture
    def points(self, rng):
        return rng.normal(size=(40, 3))

    def test_inputs_never_mutated(self, points):
        queries = _frozen(points[:10])
        refs = _frozen(points)
        before_q, before_r = queries.copy(), refs.copy()
        farthest_point_sampling(refs, 8)
        knn_indices(queries, refs, 4)
        ball_query_indices(queries, refs, 0.8, 4)
        assert np.array_equal(queries, before_q)
        assert np.array_equal(refs, before_r)

    def test_results_are_owned_not_views(self, points):
        selected = farthest_point_sampling(points, 8)
        idx, dist = knn_indices(points[:10], points, 4)
        ball = ball_query_indices(points[:10], points, 0.8, 4)
        for arr in (selected, idx, dist, ball):
            assert arr.base is None, "mapping op returned a view"
            assert not np.shares_memory(arr, points)

    def test_knn_owned_even_when_padded(self, points):
        idx, dist = knn_indices(points[:4], points[:2], k=6)
        assert idx.base is None and dist.base is None

    def test_cache_hits_are_owned_too(self, points):
        with use_map_cache(MapCache()):
            for _ in range(2):  # miss, then hit
                selected = farthest_point_sampling(points, 8)
                idx, dist = knn_indices(points[:10], points, 4)
                ball = ball_query_indices(points[:10], points, 0.8, 4)
                for arr in (selected, idx, dist, ball):
                    assert arr.base is None
                    arr[:] = -7  # must not poison the cache...
            clean = farthest_point_sampling(points, 8)
        assert np.array_equal(clean, farthest_point_sampling(points, 8))

    def test_mutating_one_result_does_not_affect_another(self, points):
        with use_map_cache(MapCache()):
            first = farthest_point_sampling(points, 8)
            second = farthest_point_sampling(points, 8)
            first[:] = 0
            assert not np.array_equal(first, second)
