"""Every example script must run end to end (small inputs via argv/env)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None) -> None:
    path = EXAMPLES / name
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_examples_exist():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 3


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "PointAcc" in out and "speedup" in out


def test_lidar_segmentation(capsys):
    run_example("lidar_segmentation.py", ["--points", "2500"])
    out = capsys.readouterr().out
    assert "voxels segmented" in out
    assert "PointAcc vs GPU" in out


def test_edge_deployment(capsys):
    run_example("edge_deployment.py")
    out = capsys.readouterr().out
    assert "PointAcc.Edge" in out
    assert "Mini-MinkowskiUNet" in out


def test_mapping_unit_walkthrough(capsys):
    run_example("mapping_unit_walkthrough.py")
    out = capsys.readouterr().out
    assert "2 maps" in out  # the Fig. 9 example reproduces exactly
    assert "hash engine" in out


def test_streaming_inference(capsys):
    run_example("streaming_inference.py", ["--frames", "2", "--points", "1500"])
    out = capsys.readouterr().out
    assert "sustained" in out and "FPS" in out


def test_batch_serving(capsys):
    run_example("batch_serving.py", ["--repeats", "2", "--scale", "0.15"])
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "reuse" in out


def test_cluster_serving(capsys):
    run_example("cluster_serving.py",
                ["--shards", "2", "--requests", "6", "--scale", "0.1"])
    out = capsys.readouterr().out
    assert "shard requests" in out
    assert "rejected" in out
    assert "warm start" in out


def test_stream_serving(capsys):
    run_example("stream_serving.py", ["--frames", "3", "--scale", "0.12"])
    out = capsys.readouterr().out
    assert "tile reuse" in out
    assert "frames/s" in out
    assert "bit-identical -> True" in out


def test_memory_system_demo(capsys):
    run_example("memory_system_demo.py")
    out = capsys.readouterr().out
    assert "miss rate" in out
    assert "fusion saving" in out or "fused groups" in out

def test_fleet_serving(capsys):
    run_example("fleet_serving.py",
                ["--streams", "2", "--frames", "2", "--scale", "0.12"])
    out = capsys.readouterr().out
    assert "cross-stream hits" in out
    assert "bit-identical -> True" in out
