"""Cross-module integration tests: full pipelines from raw cloud to report."""

import numpy as np
import pytest

from repro.baselines import MESORASI_HW, get_platform
from repro.core import PointAccModel, POINTACC_EDGE, POINTACC_FULL
from repro.core.mpu import MappingUnit
from repro.mapping import kernel_map_hash
from repro.nn import SparseConv, Trace
from repro.nn.models import mini_minkunet, run_benchmark
from repro.pointcloud import generate_sample


class TestLidarToSegmentation:
    """Raw LiDAR scan -> voxelize -> MinkUNet -> PointAcc report."""

    def test_full_pipeline(self):
        cloud = generate_sample("semantickitti", seed=11, n_points=3000)
        model = mini_minkunet(n_classes=19, seed=0)
        tensor = model.prepare_input(cloud, 0.3)
        trace = Trace(name="pipeline")
        logits = model(tensor, trace)
        trace.input_points = tensor.n
        assert logits.shape == (tensor.n, 19)
        rep = PointAccModel(POINTACC_FULL).run(trace)
        assert rep.total_seconds > 0
        assert rep.total_macs == trace.total_macs
        # Every platform executes the same workload.
        gpu = get_platform("RTX 2080Ti").run(trace)
        assert gpu.total_macs == rep.total_macs


class TestMPUIsBitExact:
    """The MPU's maps drive a sparse conv to the same numerics as the
    reference hash-based maps."""

    def test_conv_outputs_identical(self, voxel_tensor):
        conv = SparseConv(8, 16, 3, 1)
        mpu = MappingUnit(POINTACC_FULL)
        maps_hw, _ = mpu.kernel_map(
            voxel_tensor.coords, voxel_tensor.coords, 3,
            voxel_tensor.tensor_stride,
        )
        maps_ref = kernel_map_hash(
            voxel_tensor.coords, voxel_tensor.coords, 3,
            voxel_tensor.tensor_stride,
        )
        from repro.nn.sparse_conv import sparse_conv_apply

        out_hw = sparse_conv_apply(
            voxel_tensor.features, conv.weights, maps_hw, voxel_tensor.n
        )
        out_ref = sparse_conv_apply(
            voxel_tensor.features, conv.weights, maps_ref, voxel_tensor.n
        )
        assert np.allclose(out_hw, out_ref)


class TestCrossPlatformConsistency:
    def test_same_trace_all_platforms(self):
        trace, _ = run_benchmark("PointNet++(c)", scale=0.08, seed=4)
        reports = {
            "pa": PointAccModel(POINTACC_FULL).run(trace),
            "edge": PointAccModel(POINTACC_EDGE).run(trace),
            "gpu": get_platform("RTX 2080Ti").run(trace),
            "meso": MESORASI_HW.run(trace),
        }
        # All positive, and the full config is the fastest accelerator.
        for name, rep in reports.items():
            assert rep.total_seconds > 0, name
        assert reports["pa"].total_seconds < reports["edge"].total_seconds

    def test_scaling_consistency(self):
        """Twice the points: PointAcc latency grows, ratios stay sane."""
        small, _ = run_benchmark("PointNet++(c)", scale=0.06, seed=4)
        large, _ = run_benchmark("PointNet++(c)", scale=0.12, seed=4)
        pa = PointAccModel(POINTACC_FULL)
        t_small = pa.run(small).total_seconds
        t_large = pa.run(large).total_seconds
        assert t_large > t_small

    def test_report_serializable_summary(self):
        trace, _ = run_benchmark("PointNet", scale=0.08, seed=4)
        summary = PointAccModel(POINTACC_FULL).run(trace).summary()
        import json

        encoded = json.dumps(summary)
        assert "latency_ms" in encoded


class TestFailureInjection:
    def test_mesorasi_refuses_sparseconv_end_to_end(self):
        from repro.baselines import UnsupportedModelError

        trace, _ = run_benchmark("MinkNet(i)", scale=0.06, seed=4)
        with pytest.raises(UnsupportedModelError):
            MESORASI_HW.run(trace)

    def test_corrupt_spec_rejected_at_construction(self):
        from repro.nn.trace import LayerKind, LayerSpec

        with pytest.raises(ValueError):
            LayerSpec(name="bad", kind=LayerKind.DENSE_MM, n_in=-5,
                      n_out=-5, c_in=0, c_out=0, rows=-5)
        with pytest.raises(ValueError):
            LayerSpec(name="bad", kind=LayerKind.SPARSE_CONV, n_in=5,
                      n_out=5, c_in=4, c_out=4, rows=5, kernel_volume=0)
