"""Tests for the experiment-runner shared helpers."""

import pytest

from repro.experiments.common import (
    ALL_BENCHMARKS,
    MESORASI_BENCHMARKS,
    format_table,
    geomean,
)


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([5.0]) == pytest.approx(5.0)

    def test_scale_invariance(self):
        xs = [1.5, 3.0, 7.0]
        assert geomean([10 * x for x in xs]) == pytest.approx(10 * geomean(xs))

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:3])

    def test_title_prepended(self):
        out = format_table(["x"], [["1"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_empty_rows(self):
        out = format_table(["col"], [])
        assert "col" in out


class TestBenchmarkLists:
    def test_all_benchmarks_cover_table2(self):
        assert len(ALL_BENCHMARKS) == 8

    def test_mesorasi_subset(self):
        assert set(MESORASI_BENCHMARKS) <= set(ALL_BENCHMARKS)
        assert len(MESORASI_BENCHMARKS) == 4
