"""Experiment-runner tests: every figure/table regenerates with the paper's
qualitative shape at a reduced scale.

Absolute factors are validated at full scale by the benchmark harness; here
we assert the *direction* of every claim (who wins, what dominates, what is
monotone) so regressions in any model surface immediately.
"""

import pytest

from repro.experiments import ALL_EXPERIMENTS

SCALE = 0.15
SEED = 3

_results = {}


def result(name):
    if name not in _results:
        _results[name] = ALL_EXPERIMENTS[name].run(scale=SCALE, seed=SEED)
    return _results[name]


class TestStructure:
    @pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
    def test_runner_produces_table(self, name):
        res = result(name)
        assert res.experiment_id
        assert res.rows
        table = res.table()
        assert isinstance(table, str) and len(table) > 0


class TestFig05:
    def test_densities_in_paper_bands(self):
        data = result("fig05").data
        assert data["density"]["semantickitti"] < 1e-3
        assert data["density"]["modelnet40"] > 1e-3


class TestFig06:
    def test_non_matmul_dominates_pointnetpp(self):
        data = result("fig06").data
        for plat in ("CPU", "GPU", "mGPU", "CPU+TPU"):
            frac = data[("PointNet++(s)", plat)]
            assert frac["mapping"] + frac["movement"] > 0.4, plat

    def test_tpu_movement_heaviest(self):
        data = result("fig06").data
        tpu = data[("MinkNet(o)", "CPU+TPU")]
        gpu = data[("MinkNet(o)", "GPU")]
        assert tpu["movement"] > gpu["movement"]


class TestFig13Fig14:
    def test_pointacc_beats_every_server_platform(self):
        data = result("fig13").data["speedup"]
        for plat, per_net in data.items():
            assert per_net["GeoMean"] > 1.5, plat

    def test_ordering_gpu_closest_cpu_tpu_far(self):
        data = result("fig13").data["speedup"]
        gpu = data["RTX 2080Ti"]["GeoMean"]
        tpu = data["Xeon Skylake + TPU V3"]["GeoMean"]
        cpu = data["Xeon Gold 6130"]["GeoMean"]
        assert gpu < tpu and gpu < cpu

    def test_energy_savings_positive_everywhere(self):
        for fig in ("fig13", "fig14"):
            data = result(fig).data["energy"]
            for plat, per_net in data.items():
                for net, val in per_net.items():
                    assert val > 1.0, (fig, plat, net)

    def test_edge_ordering_nx_nano_rpi(self):
        data = result("fig14").data["speedup"]
        nx = data["Jetson Xavier NX"]["GeoMean"]
        nano = data["Jetson Nano"]["GeoMean"]
        rpi = data["Raspberry Pi 4B"]["GeoMean"]
        assert nx < nano < rpi


class TestFig15Fig16:
    def test_edge_beats_all_mesorasi_configs(self):
        data = result("fig15").data["speedup"]
        for baseline, per_net in data.items():
            assert per_net["GeoMean"] > 1.0, baseline

    def test_mesorasi_hw_closest(self):
        data = result("fig15").data["speedup"]
        hw = data["Mesorasi-HW"]["GeoMean"]
        for sw in ("Mesorasi-SW on Jetson Nano",
                   "Mesorasi-SW on Raspberry Pi 4B"):
            assert hw < data[sw]["GeoMean"]

    def test_codesign_speedup_and_accuracy(self):
        data = result("fig16").data
        assert data["speedup"] > 5.0  # grows to ~100x at full scale
        assert data["miou_gain"] == pytest.approx(9.1)
        assert data["sparse_rejected_by_mesorasi"]


class TestFig17:
    def test_mergesort_loses_on_cpu_gpu_wins_onchip(self):
        left = result("fig17").data["kernel_mapping"]
        for plat in ("Xeon Gold 6130", "RTX 2080Ti"):
            assert left[plat]["mergesort_ms"] > left[plat]["hash_ms"]
        assert left["PointAcc"]["mergesort_ms"] < left["PointAcc"]["hash_ms"]

    def test_fd_hurts_gpu_not_pointacc(self):
        right = result("fig17").data["conv_flow"]
        gpu = right["RTX 2080Ti"]
        assert gpu["fetch_on_demand_ms"] > gpu["gather_scatter_ms"]
        pa = right["PointAcc"]
        assert pa["fetch_on_demand_ms"] <= pa["gather_scatter_ms"] * 1.05
        # F-D time ~ the G-S flow's matmul-only time (paper's claim).
        assert pa["fetch_on_demand_ms"] == pytest.approx(
            pa["gs_matmul_only_ms"], rel=0.5
        )


class TestFig18:
    def test_miss_rate_monotone_in_block_size(self):
        curves = result("fig18").data["curves"]
        for key, rates in curves.items():
            assert all(a >= b - 1e-9 for a, b in zip(rates, rates[1:])), key

    def test_wider_channels_lower_miss_rate(self):
        curves = result("fig18").data["curves"]
        assert curves[(2, 128)][0] < curves[(2, 64)][0]
        assert curves[(3, 128)][0] < curves[(3, 64)][0]


class TestFig19Fig20:
    def test_caching_reduces_dram_everywhere(self):
        data = result("fig19").data
        for net, d in data.items():
            assert d["reduction"] > 2.0, net

    def test_indoor_reduction_larger(self):
        data = result("fig19").data
        assert data["MinkNet(i)"]["reduction"] > data["MinkNet(o)"]["reduction"]

    def test_fusion_reduces_all_networks(self):
        data = result("fig20").data
        for net, d in data.items():
            assert 0.0 < d["reduction"] < 1.0, net
            assert d["fused_mb"] < d["unfused_mb"]


class TestFig21:
    def test_matmul_dominates_pointacc(self):
        lat = result("fig21").data["latency"]["PointAcc"]
        assert lat["matmul"] > 0.5

    def test_pointacc_fastest(self):
        lat = result("fig21").data["latency"]
        assert lat["PointAcc"]["total_ms"] < lat["GPU"]["total_ms"]
        assert lat["PointAcc"]["total_ms"] < lat["CPU+TPU"]["total_ms"]

    def test_energy_pie_compute_heavy(self):
        pie = result("fig21").data["energy_pie"]
        assert pie["compute"] > 0.5
        assert pie["dram"] < 0.5


class TestAblations:
    def test_hash_vs_mergesort(self):
        data = result("abl-hash").data
        for entry in data["layers"]:
            assert entry["speedup"] > 1.0
            assert entry["area_ratio"] > 5.0

    def test_topk_beats_quickselect_on_average(self):
        data = result("abl-topk").data
        assert data["geomean"] > 1.0


class TestAblScaling:
    def test_speedup_stable_across_scales(self):
        data = result("abl-scale").data
        for net, points in data.items():
            speedups = [p["speedup"] for p in points]
            assert min(speedups) > 1.0, net
            # No order-of-magnitude collapse across the sweep.
            assert max(speedups) / min(speedups) < 5.0, net


class TestTab03:
    def test_area_within_band(self):
        data = result("tab03").data
        assert data["PointAcc"]["area_mm2"] == pytest.approx(15.7, rel=0.1)
        assert data["PointAcc.Edge"]["area_mm2"] == pytest.approx(3.9, rel=0.2)

    def test_peak_tops(self):
        data = result("tab03").data
        assert data["PointAcc"]["peak_tops"] == pytest.approx(8.19, rel=0.01)
