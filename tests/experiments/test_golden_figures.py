"""Golden-regression harness: fast experiments vs checked-in paper figures.

``benchmarks/_results/*.txt`` archives every regenerated table at full
scale (``scale=1.0, seed=1`` — the benchmark harness defaults).  This test
re-runs a *fast* subset of those experiments at the same settings and
compares each regenerated table against its archived golden file, so a
refactor that silently drifts a paper figure fails CI instead of shipping.

Comparison is structural + numeric: the non-numeric skeleton of every line
must match exactly (same rows, same labels, same units), while each number
is compared with a small relative tolerance (``RTOL``) to absorb benign
formatting/rounding churn without letting real drift through.  The models
are deterministic, so today the match is exact; the tolerance is headroom,
not slack for known error.

Keep the subset fast (< ~5 s total): heavyweight figures (full MinkNet(o)
sweeps) stay covered by the benchmark suite that *writes* the goldens.
"""

import pathlib
import re

import numpy as np
import pytest

from repro.experiments import ALL_EXPERIMENTS

RESULTS_DIR = pathlib.Path(__file__).parent.parent.parent / "benchmarks" / "_results"

# The archive settings (benchmarks/conftest.py defaults).
GOLDEN_SCALE = 1.0
GOLDEN_SEED = 1

# Fast subset: sub-second runners spanning the component models (DRAM
# timing, MPU TopK, area/ASIC table) and one full cost-model figure (the
# Fig. 18 cache sweep).
FAST_EXPERIMENTS = ["abl-dram", "abl-topk", "tab03", "fig18"]

RTOL = 0.02

_NUMBER = re.compile(r"[-+]?\d+\.?\d*(?:[eE][-+]?\d+)?")


def _dissect(line: str) -> tuple[str, list[float]]:
    """Split a table line into its non-numeric skeleton and its numbers."""
    numbers = [float(m) for m in _NUMBER.findall(line)]
    skeleton = _NUMBER.sub("#", line).rstrip()
    return skeleton, numbers


def compare_tables(regenerated: str, golden: str, context: str) -> list[str]:
    """Differences between two archived tables (empty list == match)."""
    new_lines = regenerated.rstrip().splitlines()
    old_lines = golden.rstrip().splitlines()
    problems = []
    if len(new_lines) != len(old_lines):
        problems.append(
            f"{context}: row count changed "
            f"({len(old_lines)} -> {len(new_lines)} lines)"
        )
        return problems
    for lineno, (new, old) in enumerate(zip(new_lines, old_lines), start=1):
        new_skel, new_nums = _dissect(new)
        old_skel, old_nums = _dissect(old)
        if new_skel != old_skel:
            problems.append(
                f"{context}:{lineno}: layout/label drift\n"
                f"  golden: {old.rstrip()}\n  now   : {new.rstrip()}"
            )
            continue
        for new_v, old_v in zip(new_nums, old_nums):
            if not np.isclose(new_v, old_v, rtol=RTOL, atol=1e-9):
                problems.append(
                    f"{context}:{lineno}: value drift {old_v} -> {new_v} "
                    f"(> {RTOL * 100:.0f}% tolerance)\n"
                    f"  golden: {old.rstrip()}\n  now   : {new.rstrip()}"
                )
    return problems


def test_fast_subset_is_actually_registered():
    for exp_id in FAST_EXPERIMENTS:
        assert exp_id in ALL_EXPERIMENTS
        assert (RESULTS_DIR / f"{exp_id}.txt").is_file(), (
            f"golden file for {exp_id} missing; run the benchmark suite "
            f"(make bench) to regenerate benchmarks/_results/"
        )


@pytest.mark.parametrize("exp_id", FAST_EXPERIMENTS)
def test_golden_figures(exp_id):
    golden = (RESULTS_DIR / f"{exp_id}.txt").read_text()
    result = ALL_EXPERIMENTS[exp_id].run(scale=GOLDEN_SCALE, seed=GOLDEN_SEED)
    problems = compare_tables(result.table(), golden, exp_id)
    assert not problems, (
        f"{exp_id} drifted from its golden figure:\n" + "\n".join(problems)
    )


class TestComparator:
    """The comparator itself must catch drift and forgive rounding."""

    GOLDEN = "latency  6.16 ms\nenergy   108.1 mJ"

    def test_exact_match_passes(self):
        assert compare_tables(self.GOLDEN, self.GOLDEN, "t") == []

    def test_within_tolerance_passes(self):
        close = "latency  6.17 ms\nenergy   108.3 mJ"
        assert compare_tables(close, self.GOLDEN, "t") == []

    def test_value_drift_detected(self):
        drifted = "latency  7.91 ms\nenergy   108.1 mJ"
        problems = compare_tables(drifted, self.GOLDEN, "t")
        assert len(problems) == 1 and "value drift" in problems[0]

    def test_label_drift_detected(self):
        relabeled = "latency  6.16 us\nenergy   108.1 mJ"
        problems = compare_tables(relabeled, self.GOLDEN, "t")
        assert len(problems) == 1 and "layout/label drift" in problems[0]

    def test_missing_row_detected(self):
        problems = compare_tables("latency  6.16 ms", self.GOLDEN, "t")
        assert len(problems) == 1 and "row count" in problems[0]
