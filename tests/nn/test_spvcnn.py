"""Tests for the SPVCNN-lite extension model."""

import numpy as np
import pytest

from repro.core import PointAccModel, POINTACC_FULL
from repro.nn import Trace
from repro.nn.models.spvcnn import SPVCNNLite
from repro.nn.trace import LayerKind
from repro.pointcloud import generate_sample


@pytest.fixture(scope="module")
def scene():
    return generate_sample("semantickitti", seed=9, n_points=2500)


@pytest.fixture(scope="module")
def model():
    return SPVCNNLite(n_classes=19, seed=0)


class TestSPVCNN:
    def test_per_point_logits(self, scene, model):
        out = model.run(scene, voxel_size=0.3)
        assert out.shape == (scene.n, 19)
        assert np.all(np.isfinite(out))

    def test_point_to_voxel_consistency(self, scene, model):
        tensor, inverse, point_feats = model.prepare_input(scene, 0.3)
        assert len(inverse) == scene.n
        assert inverse.max() < tensor.n
        assert point_feats.shape == (scene.n, model.c_in)
        # Points in the same voxel share initial features.
        grid = np.floor(scene.points / 0.3).astype(np.int64)
        same = (grid[0] == grid).all(axis=1)
        assert np.allclose(point_feats[same], point_feats[0])

    def test_trace_has_devoxelize_gathers(self, scene, model):
        trace = Trace(name="spv")
        model.run(scene, 0.3, trace)
        gathers = [s for s in trace.by_kind(LayerKind.GATHER)
                   if "devox" in s.name]
        assert len(gathers) == 1 + len(model.channels)
        for g in gathers:
            assert g.n_maps == scene.n  # one map per raw point

    def test_trace_has_voxelize_scatters(self, scene, model):
        trace = Trace(name="spv")
        model.run(scene, 0.3, trace)
        scatters = trace.by_kind(LayerKind.SCATTER)
        vox = [s for s in scatters if s.name.endswith(".vox")]
        assert len(vox) == len(model.channels)

    def test_runs_on_pointacc(self, scene, model):
        trace = Trace(name="spv")
        model.run(scene, 0.3, trace)
        rep = PointAccModel(POINTACC_FULL).run(trace)
        assert rep.total_seconds > 0
        assert rep.total_macs == trace.total_macs

    def test_point_branch_cheaper_than_voxel_branch(self, scene, model):
        """The SPV idea: the point branch is pointwise (cheap) while the
        voxel branch carries the neighborhood aggregation (27x maps)."""
        trace = Trace(name="spv")
        model.run(scene, 0.3, trace)
        voxel_macs = sum(
            s.macs for s in trace.by_kind(LayerKind.SPARSE_CONV)
        )
        point_macs = sum(
            s.macs for s in trace.by_kind(LayerKind.DENSE_MM)
            if ".point" in s.name
        )
        assert 0 < point_macs < voxel_macs

    def test_deterministic(self, scene):
        a = SPVCNNLite(seed=3).run(scene, 0.3)
        b = SPVCNNLite(seed=3).run(scene, 0.3)
        assert np.allclose(a, b)
