"""Tests for the SparseConv layers, including dense-grid equivalence."""

import itertools

import numpy as np
import pytest

from repro.mapping.kernel_map import kernel_map_mergesort
from repro.nn import SparseConv, SparseConvTranspose, Trace, sparse_conv_apply
from repro.nn.trace import LayerKind
from repro.pointcloud import SparseTensor


def dense_conv3d_reference(grid, weights, kernel_size=3):
    """Direct dense 3D convolution for equivalence testing.

    ``grid``: (X, Y, Z, C_in) dense feature volume; ``weights``:
    (K^3, C_in, C_out) in lexicographic offset order (matching
    kernel_offsets).  'Same' padding, stride 1.
    """
    X, Y, Z, c_in = grid.shape
    c_out = weights.shape[2]
    half = (kernel_size - 1) // 2
    offsets = list(
        itertools.product(range(-half, kernel_size - half), repeat=3)
    )
    out = np.zeros((X, Y, Z, c_out))
    for w_idx, (dx, dy, dz) in enumerate(offsets):
        for x in range(X):
            for y in range(Y):
                for z in range(Z):
                    sx, sy, sz = x + dx, y + dy, z + dz
                    if 0 <= sx < X and 0 <= sy < Y and 0 <= sz < Z:
                        out[x, y, z] += grid[sx, sy, sz] @ weights[w_idx]
    return out


class TestSparseConvApply:
    def test_matches_dense_conv_on_full_grid(self, rng):
        """On a fully-dense grid, sparse conv == regular 3D convolution."""
        shape = (3, 3, 3)
        coords = np.array(
            list(itertools.product(range(3), repeat=3)), dtype=np.int64
        )
        feats = rng.normal(size=(27, 2))
        weights = rng.normal(size=(27, 2, 3))
        maps = kernel_map_mergesort(coords, coords, 3, 1)
        got = sparse_conv_apply(feats, weights, maps, 27)
        grid = np.zeros((*shape, 2))
        grid[tuple(coords.T)] = feats
        expect = dense_conv3d_reference(grid, weights)[tuple(coords.T)]
        assert np.allclose(got, expect)

    def test_matches_dense_conv_on_sparse_grid(self, rng):
        """With holes in the grid, outputs only at occupied sites
        (submanifold) and contributions only from occupied neighbors."""
        all_sites = np.array(
            list(itertools.product(range(4), repeat=3)), dtype=np.int64
        )
        keep = rng.random(len(all_sites)) < 0.3
        keep[0] = True
        coords = all_sites[keep]
        feats = rng.normal(size=(len(coords), 2))
        weights = rng.normal(size=(27, 2, 2))
        maps = kernel_map_mergesort(coords, coords, 3, 1)
        got = sparse_conv_apply(feats, weights, maps, len(coords))
        grid = np.zeros((4, 4, 4, 2))
        grid[tuple(coords.T)] = feats
        expect = dense_conv3d_reference(grid, weights)[tuple(coords.T)]
        assert np.allclose(got, expect)

    def test_identity_kernel(self, rng):
        coords = rng.integers(0, 5, size=(30, 3))
        from repro.pointcloud.coords import unique_coords

        coords, _ = unique_coords(coords)
        feats = rng.normal(size=(len(coords), 4))
        weights = np.zeros((27, 4, 4))
        weights[13] = np.eye(4)  # center offset only
        maps = kernel_map_mergesort(coords, coords, 3, 1)
        out = sparse_conv_apply(feats, weights, maps, len(coords))
        assert np.allclose(out, feats)

    def test_weight_shape_validation(self, rng):
        maps = kernel_map_mergesort(
            np.array([[0, 0, 0]]), np.array([[0, 0, 0]]), 3, 1
        )
        with pytest.raises(ValueError):
            sparse_conv_apply(np.zeros((1, 2)), np.zeros((2, 2)), maps, 1)


class TestSparseConvLayer:
    def test_submanifold_preserves_coords(self, voxel_tensor):
        conv = SparseConv(8, 16, 3, 1)
        out = conv(voxel_tensor)
        assert np.array_equal(out.coords, voxel_tensor.coords)
        assert out.channels == 16

    def test_strided_downsamples(self, voxel_tensor):
        conv = SparseConv(8, 16, 2, 2)
        out = conv(voxel_tensor)
        assert out.tensor_stride == 2
        assert out.n < voxel_tensor.n

    def test_trace_records_full_pipeline(self, voxel_tensor):
        conv = SparseConv(8, 16, 2, 2, name="down")
        trace = Trace()
        conv(voxel_tensor, trace)
        kinds = [s.kind for s in trace.specs]
        assert kinds == [
            LayerKind.MAP_QUANT,
            LayerKind.MAP_KERNEL,
            LayerKind.GATHER,
            LayerKind.SPARSE_CONV,
            LayerKind.SCATTER,
        ]
        conv_spec = trace.specs[3]
        assert conv_spec.n_maps > 0
        assert conv_spec.params["maps"].n_maps == conv_spec.n_maps

    def test_map_cache_hit_flagged(self, voxel_tensor):
        conv1 = SparseConv(8, 8, 3, 1, name="a")
        conv2 = SparseConv(8, 8, 3, 1, name="b")
        cache = {}
        trace = Trace()
        out = conv1(voxel_tensor, trace, cache)
        conv2(out, trace, cache)
        kmaps = trace.by_kind(LayerKind.MAP_KERNEL)
        assert kmaps[0].params["cached"] is False
        assert kmaps[1].params["cached"] is True

    def test_channel_mismatch_raises(self, voxel_tensor):
        with pytest.raises(ValueError):
            SparseConv(4, 8)(voxel_tensor)

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            SparseConv(4, 8, 3, 3)


class TestSparseConvTranspose:
    def test_upsample_to_skip_cloud(self, voxel_tensor):
        down = SparseConv(8, 16, 2, 2)
        coarse = down(voxel_tensor)
        up = SparseConvTranspose(16, 8, 2)
        fine = up(coarse, voxel_tensor)
        assert np.array_equal(fine.coords, voxel_tensor.coords)
        assert fine.tensor_stride == voxel_tensor.tensor_stride
        assert fine.channels == 8

    def test_transpose_maps_mirror_forward_maps(self, voxel_tensor):
        """The up-conv map set is the transpose of the down-conv map set."""
        down = SparseConv(8, 8, 2, 2)
        coarse = down(voxel_tensor)
        fwd = down.build_maps(voxel_tensor, coarse)
        up = SparseConvTranspose(8, 8, 2)
        bwd = up.build_maps(coarse, voxel_tensor)
        fwd_pairs = set(zip(fwd.in_idx.tolist(), fwd.out_idx.tolist()))
        bwd_pairs = set(zip(bwd.out_idx.tolist(), bwd.in_idx.tolist()))
        assert fwd_pairs == bwd_pairs

    def test_every_fine_point_covered(self, voxel_tensor):
        """Generative transpose: every fine voxel receives its coarse parent."""
        down = SparseConv(8, 8, 2, 2)
        coarse = down(voxel_tensor)
        up = SparseConvTranspose(8, 8, 2)
        maps = up.build_maps(coarse, voxel_tensor)
        assert set(maps.out_idx.tolist()) == set(range(voxel_tensor.n))

    def test_requires_finer_output(self, voxel_tensor):
        up = SparseConvTranspose(8, 8, 2)
        with pytest.raises(ValueError):
            up.build_maps(voxel_tensor, voxel_tensor.downsample(2))
