"""Tests for Linear/SharedMLP layers and trace recording."""

import numpy as np
import pytest

from repro.nn import Linear, SharedMLP, Trace, new_param_rng
from repro.nn.trace import LayerKind, LayerSpec


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(8, 16, new_param_rng(0))
        y = layer(rng.normal(size=(10, 8)))
        assert y.shape == (10, 16)

    def test_relu_applied(self, rng):
        layer = Linear(4, 4, new_param_rng(0), relu=True)
        y = layer(rng.normal(size=(50, 4)))
        assert np.all(y >= 0)

    def test_no_relu_allows_negatives(self, rng):
        layer = Linear(4, 4, new_param_rng(0), relu=False, bn=False)
        y = layer(rng.normal(size=(200, 4)))
        assert np.any(y < 0)

    def test_deterministic_weights(self, rng):
        a = Linear(4, 4, new_param_rng(3), relu=False, bn=False)
        b = Linear(4, 4, new_param_rng(3), relu=False, bn=False)
        x = rng.normal(size=(5, 4))
        assert np.allclose(a(x), b(x))

    def test_records_dense_spec(self, rng):
        layer = Linear(8, 16, new_param_rng(0), name="fc1")
        trace = Trace()
        layer(rng.normal(size=(12, 8)), trace)
        assert len(trace) == 1
        spec = trace.specs[0]
        assert spec.kind is LayerKind.DENSE_MM
        assert spec.rows == 12 and spec.c_in == 8 and spec.c_out == 16
        assert spec.fusible
        assert spec.macs == 12 * 8 * 16

    def test_wrong_width_raises(self, rng):
        layer = Linear(8, 16, new_param_rng(0))
        with pytest.raises(ValueError):
            layer(rng.normal(size=(4, 9)))

    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            Linear(0, 4, new_param_rng(0))


class TestSharedMLP:
    def test_channel_chain(self, rng):
        mlp = SharedMLP(3, [8, 16, 32], new_param_rng(0))
        assert mlp.c_in == 3 and mlp.c_out == 32
        y = mlp(rng.normal(size=(7, 3)))
        assert y.shape == (7, 32)

    def test_final_relu_false(self, rng):
        mlp = SharedMLP(4, [8, 8], new_param_rng(0), final_relu=False)
        y = mlp(rng.normal(size=(100, 4)))
        assert np.any(y < 0)

    def test_records_one_spec_per_layer(self, rng):
        mlp = SharedMLP(3, [8, 16], new_param_rng(0))
        trace = Trace()
        mlp(rng.normal(size=(5, 3)), trace)
        assert len(trace) == 2
        assert [s.c_out for s in trace.specs] == [8, 16]

    def test_empty_channels_rejected(self):
        with pytest.raises(ValueError):
            SharedMLP(3, [], new_param_rng(0))


class TestTrace:
    def _dense(self, rows=10, c_in=4, c_out=8, fusible=True):
        return LayerSpec(
            name="l", kind=LayerKind.DENSE_MM, n_in=rows, n_out=rows,
            c_in=c_in, c_out=c_out, rows=rows, fusible=fusible,
        )

    def test_total_macs(self):
        trace = Trace()
        trace.record(self._dense())
        trace.record(self._dense(rows=5))
        assert trace.total_macs == 10 * 32 + 5 * 32

    def test_kind_predicates(self):
        assert LayerKind.MAP_FPS.is_mapping
        assert not LayerKind.DENSE_MM.is_mapping
        assert LayerKind.GATHER.is_movement
        assert LayerKind.SPARSE_CONV.is_matmul

    def test_sparse_conv_macs_use_maps(self):
        spec = LayerSpec(
            name="c", kind=LayerKind.SPARSE_CONV, n_in=100, n_out=100,
            c_in=8, c_out=8, rows=900, n_maps=900, kernel_volume=27,
        )
        assert spec.macs == 900 * 64

    def test_moved_elements(self):
        g = LayerSpec(name="g", kind=LayerKind.GATHER, n_in=10, n_out=5,
                      c_in=16, n_maps=50)
        s = LayerSpec(name="s", kind=LayerKind.SCATTER, n_in=10, n_out=5,
                      c_out=32, n_maps=50)
        assert g.moved_elements() == 800
        assert s.moved_elements() == 1600
        assert self._dense().moved_elements() == 0

    def test_by_kind_and_categories(self):
        trace = Trace()
        trace.record(self._dense())
        trace.record(LayerSpec(name="f", kind=LayerKind.MAP_FPS,
                               n_in=100, n_out=10, rows=100))
        assert len(trace.mapping_specs) == 1
        assert len(trace.matmul_specs) == 1
        assert len(trace.by_kind(LayerKind.MAP_FPS, LayerKind.DENSE_MM)) == 2

    def test_macs_per_point(self):
        trace = Trace()
        trace.record(self._dense(rows=100))
        assert trace.macs_per_point(100) == 32.0
        with pytest.raises(ValueError):
            trace.macs_per_point(0)

    def test_summary_keys(self):
        trace = Trace()
        trace.record(self._dense())
        s = trace.summary()
        assert s["layers"] == 1 and s["matmul_ops"] == 1
