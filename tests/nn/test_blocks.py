"""Tests for PointNet++ set abstraction / feature propagation and EdgeConv."""

import numpy as np
import pytest

from repro.nn import (
    EdgeConv,
    FeaturePropagation,
    GlobalSetAbstraction,
    SetAbstraction,
    SetAbstractionMSG,
    Trace,
    new_param_rng,
)
from repro.nn.trace import LayerKind


class TestSetAbstraction:
    def _sa(self, npoint=32, k=8, c_in=0):
        return SetAbstraction(
            npoint, 0.3, k, c_in, [16, 32], new_param_rng(0), name="sa"
        )

    def test_output_shapes(self, object_cloud):
        sa = self._sa()
        centers, feats = sa(object_cloud.points, None)
        assert centers.shape == (32, 3)
        assert feats.shape == (32, 32)

    def test_centers_subset_of_input(self, object_cloud):
        sa = self._sa()
        centers, _ = sa(object_cloud.points, None)
        pts_set = {tuple(p) for p in object_cloud.points.tolist()}
        assert all(tuple(c) in pts_set for c in centers.tolist())

    def test_trace_sequence(self, object_cloud):
        sa = self._sa()
        trace = Trace()
        sa(object_cloud.points, None, trace)
        kinds = [s.kind for s in trace.specs]
        assert kinds[0] is LayerKind.MAP_FPS
        assert kinds[1] is LayerKind.MAP_BALL
        assert kinds[2] is LayerKind.GATHER
        assert kinds[3] is LayerKind.DENSE_MM
        assert kinds[-1] is LayerKind.POOL_MAX
        mlp_specs = trace.by_kind(LayerKind.DENSE_MM)
        assert all(s.rows == 32 * 8 for s in mlp_specs)

    def test_with_input_features(self, object_cloud, rng):
        sa = self._sa(c_in=5)
        feats = rng.normal(size=(object_cloud.n, 5))
        _, out = sa(object_cloud.points, feats)
        assert out.shape == (32, 32)

    def test_small_cloud_clamps_npoint(self, rng):
        sa = self._sa(npoint=64)
        pts = rng.random((20, 3))
        centers, feats = sa(pts, None)
        assert len(centers) == 20


class TestSetAbstractionMSG:
    def test_concatenates_scales(self, object_cloud):
        msg = SetAbstractionMSG(
            16,
            [(0.2, 4, [8, 16]), (0.4, 8, [8, 32])],
            0,
            new_param_rng(0),
        )
        assert msg.c_out == 48
        centers, feats = msg(object_cloud.points, None)
        assert feats.shape == (16, 48)

    def test_per_scale_mapping_specs(self, object_cloud):
        msg = SetAbstractionMSG(
            16, [(0.2, 4, [8]), (0.4, 8, [8])], 0, new_param_rng(0)
        )
        trace = Trace()
        msg(object_cloud.points, None, trace)
        balls = trace.by_kind(LayerKind.MAP_BALL)
        assert len(balls) == 2
        assert balls[0].kernel_volume == 4 and balls[1].kernel_volume == 8
        # One FPS shared across scales.
        assert len(trace.by_kind(LayerKind.MAP_FPS)) == 1

    def test_requires_scales(self):
        with pytest.raises(ValueError):
            SetAbstractionMSG(16, [], 0, new_param_rng(0))


class TestGlobalSA:
    def test_single_vector_output(self, object_cloud):
        g = GlobalSetAbstraction(0, [16, 32], new_param_rng(0))
        out = g(object_cloud.points, None)
        assert out.shape == (32,)

    def test_records_global_pool(self, object_cloud):
        g = GlobalSetAbstraction(0, [16], new_param_rng(0))
        trace = Trace()
        g(object_cloud.points, None, trace)
        pools = trace.by_kind(LayerKind.GLOBAL_POOL)
        assert len(pools) == 1 and pools[0].n_out == 1


class TestFeaturePropagation:
    def test_shapes_and_trace(self, rng):
        fp = FeaturePropagation(16, 8, [32], new_param_rng(0))
        tgt = rng.random((50, 3))
        src = rng.random((10, 3))
        src_feats = rng.normal(size=(10, 16))
        tgt_feats = rng.normal(size=(50, 8))
        trace = Trace()
        out = fp(tgt, tgt_feats, src, src_feats, trace)
        assert out.shape == (50, 32)
        kinds = [s.kind for s in trace.specs]
        assert LayerKind.MAP_KNN in kinds and LayerKind.INTERP in kinds

    def test_without_skip(self, rng):
        fp = FeaturePropagation(16, 0, [8], new_param_rng(0))
        out = fp(rng.random((20, 3)), None, rng.random((5, 3)),
                 rng.normal(size=(5, 16)))
        assert out.shape == (20, 8)

    def test_skip_width_validated(self, rng):
        fp = FeaturePropagation(16, 8, [8], new_param_rng(0))
        with pytest.raises(ValueError):
            fp(rng.random((20, 3)), rng.normal(size=(20, 4)),
               rng.random((5, 3)), rng.normal(size=(5, 16)))


class TestEdgeConv:
    def test_shapes(self, rng):
        ec = EdgeConv(3, [16, 32], 8, new_param_rng(0))
        out = ec(rng.random((40, 3)))
        assert out.shape == (40, 32)

    def test_knn_on_features_records_dim(self, rng):
        ec = EdgeConv(6, [8], 4, new_param_rng(0))
        trace = Trace()
        ec(rng.random((30, 6)), trace)
        knn = trace.by_kind(LayerKind.MAP_KNN)[0]
        assert knn.params["feature_dim"] == 6  # dynamic graph in feature space
        assert knn.n_maps == 30 * 4

    def test_k_clamped_to_n(self, rng):
        ec = EdgeConv(3, [8], 50, new_param_rng(0))
        out = ec(rng.random((10, 3)))
        assert out.shape == (10, 8)

    def test_channel_check(self, rng):
        ec = EdgeConv(3, [8], 4, new_param_rng(0))
        with pytest.raises(ValueError):
            ec(rng.random((10, 5)))

    def test_edge_features_translation_sensitive_center(self, rng):
        """EdgeConv input is concat(x_i, x_j - x_i): shifting all points
        changes only the center part, not the relative part."""
        pts = rng.random((20, 3))
        ec = EdgeConv(3, [8], 4, new_param_rng(0))
        base = ec(pts)
        shifted = ec(pts + 100.0)
        # Outputs differ (center features shifted) but are finite and same
        # shape; the relative-geometry half keeps them correlated.
        assert base.shape == shifted.shape
        assert np.all(np.isfinite(shifted))
