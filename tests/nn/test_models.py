"""End-to-end tests of the benchmark model zoo (small scales)."""

import numpy as np
import pytest

from repro.nn.models import (
    BENCHMARKS,
    MINI_MINKUNET,
    build_trace,
    get_benchmark,
    mini_minkunet,
    run_benchmark,
)
from repro.nn.trace import LayerKind


SCALE = 0.08


class TestZoo:
    @pytest.mark.parametrize("notation", sorted(BENCHMARKS))
    def test_runs_and_traces(self, notation):
        trace, output = run_benchmark(notation, scale=SCALE, seed=3)
        assert len(trace) > 0
        assert trace.total_macs > 0
        assert trace.input_points > 0

    def test_pointnet_output_is_class_logits(self):
        _, out = run_benchmark("PointNet", scale=SCALE, seed=0)
        assert out.shape == (40,)
        assert np.all(np.isfinite(out))

    def test_pointnet2_cls_logits(self):
        _, out = run_benchmark("PointNet++(c)", scale=SCALE, seed=0)
        assert out.shape == (40,)

    def test_partseg_per_point_logits(self):
        trace, out = run_benchmark("PointNet++(ps)", scale=SCALE, seed=0)
        assert out.shape == (trace.input_points, 50)

    def test_dgcnn_per_point_logits(self):
        trace, out = run_benchmark("DGCNN", scale=SCALE, seed=0)
        assert out.shape == (trace.input_points, 50)

    def test_semseg_per_point_logits(self):
        trace, out = run_benchmark("PointNet++(s)", scale=SCALE, seed=0)
        assert out.shape == (trace.input_points, 13)

    def test_frustum_detections(self):
        _, detections = run_benchmark("F-PointNet++", scale=0.25, seed=0)
        assert len(detections) >= 1
        for det in detections:
            assert det["box"].shape == (59,)

    def test_minknet_per_voxel_logits(self):
        trace, out = run_benchmark("MinkNet(o)", scale=SCALE, seed=0)
        assert out.shape[1] == 19
        assert out.shape[0] == trace.input_points

    def test_mini_minkunet_smaller_than_full(self):
        mini = build_trace("Mini-MinkowskiUNet", scale=SCALE, seed=0)
        full = build_trace("MinkNet(i)", scale=SCALE, seed=0)
        assert mini.total_macs < full.total_macs / 4

    def test_deterministic_traces(self):
        a = run_benchmark("PointNet++(c)", scale=SCALE, seed=5)[0]
        b = run_benchmark("PointNet++(c)", scale=SCALE, seed=5)[0]
        assert a.total_macs == b.total_macs
        assert len(a) == len(b)


class TestFamilies:
    def test_pointnet_family_has_no_sparse_conv(self):
        for notation in ("PointNet", "PointNet++(c)", "DGCNN"):
            trace = build_trace(notation, scale=SCALE, seed=0)
            assert not trace.by_kind(LayerKind.SPARSE_CONV)

    def test_sparseconv_family_has_kernel_maps(self):
        trace = build_trace("MinkNet(i)", scale=SCALE, seed=0)
        kmaps = trace.by_kind(LayerKind.MAP_KERNEL)
        assert len(kmaps) > 0
        cached = [s for s in kmaps if s.params.get("cached")]
        # Same-stride layers reuse maps (MinkowskiEngine behaviour).
        assert len(cached) > 0

    def test_minknet_map_cache_correctness(self):
        """Cached and uncached kernel maps must describe identical layers."""
        trace = build_trace("MinkNet(i)", scale=SCALE, seed=0)
        seen = {}
        for spec in trace.by_kind(LayerKind.MAP_KERNEL):
            key = (spec.n_in, spec.n_out, spec.kernel_volume)
            if spec.params.get("cached"):
                assert key in seen, "cache hit without a prior computation"
                assert seen[key] == spec.n_maps
            else:
                seen[key] = spec.n_maps

    def test_mesorasi_compatibility_flags(self):
        assert get_benchmark("PointNet++(c)").mesorasi_compatible
        assert not get_benchmark("MinkNet(i)").mesorasi_compatible

    def test_registry_lookup(self):
        assert get_benchmark("Mini-MinkowskiUNet") is MINI_MINKUNET
        with pytest.raises(KeyError):
            get_benchmark("AlexNet")

    def test_published_accuracy_present(self):
        for bench in BENCHMARKS.values():
            assert bench.published, bench.notation


class TestMiniMinkUNet:
    def test_forward(self, indoor_cloud):
        model = mini_minkunet(n_classes=13, seed=0)
        tensor = model.prepare_input(indoor_cloud, 0.15)
        out = model(tensor)
        assert out.shape == (tensor.n, 13)

    def test_input_features_width(self, indoor_cloud):
        model = mini_minkunet(seed=0)
        tensor = model.prepare_input(indoor_cloud, 0.15)
        assert tensor.channels == model.c_in
