"""Tests for stateless numpy kernels (repro.nn.functional)."""

import numpy as np
import pytest

from repro.nn import functional as F


class TestBasics:
    def test_relu(self):
        x = np.array([[-1.0, 0.0, 2.0]])
        assert F.relu(x).tolist() == [[0.0, 0.0, 2.0]]

    def test_linear(self, rng):
        x = rng.normal(size=(5, 3))
        w = rng.normal(size=(3, 4))
        b = rng.normal(size=4)
        assert np.allclose(F.linear(x, w, b), x @ w + b)
        assert np.allclose(F.linear(x, w), x @ w)

    def test_batch_norm_normalizes(self, rng):
        x = rng.normal(loc=3.0, scale=2.0, size=(1000, 4))
        mean = x.mean(axis=0)
        var = x.var(axis=0)
        y = F.batch_norm(x, mean, var, np.ones(4), np.zeros(4))
        assert np.allclose(y.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(y.std(axis=0), 1.0, atol=1e-3)

    def test_batch_norm_affine(self, rng):
        x = rng.normal(size=(10, 2))
        y = F.batch_norm(
            x, np.zeros(2), np.ones(2) - 1e-5, np.array([2.0, 3.0]),
            np.array([1.0, -1.0]),
        )
        assert np.allclose(y, x * [2.0, 3.0] + [1.0, -1.0], atol=1e-4)

    def test_softmax_sums_to_one(self, rng):
        x = rng.normal(size=(6, 10)) * 50  # large logits: stability check
        p = F.softmax(x)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert np.all(p >= 0)

    def test_log_softmax_consistent(self, rng):
        x = rng.normal(size=(4, 7))
        assert np.allclose(F.log_softmax(x), np.log(F.softmax(x)))


class TestPooling:
    def test_max_pool_groups(self):
        x = np.array([[1.0], [5.0], [2.0], [0.0], [3.0], [4.0]])
        out = F.max_pool_groups(x, 3)
        assert out.ravel().tolist() == [5.0, 4.0]

    def test_max_pool_indivisible_raises(self):
        with pytest.raises(ValueError):
            F.max_pool_groups(np.zeros((5, 2)), 3)

    def test_avg_pool_groups(self):
        x = np.array([[2.0], [4.0], [6.0], [8.0]])
        assert F.avg_pool_groups(x, 2).ravel().tolist() == [3.0, 7.0]

    def test_global_max_pool(self, rng):
        x = rng.normal(size=(20, 5))
        assert np.allclose(F.global_max_pool(x), x.max(axis=0))

    def test_global_max_pool_empty_raises(self):
        with pytest.raises(ValueError):
            F.global_max_pool(np.empty((0, 3)))


class TestScatter:
    def test_scatter_add(self):
        vals = np.array([[1.0], [2.0], [4.0]])
        out = F.scatter_add(vals, np.array([0, 1, 0]), 3)
        assert out.ravel().tolist() == [5.0, 2.0, 0.0]

    def test_scatter_add_duplicate_indices_accumulate(self, rng):
        vals = rng.normal(size=(100, 3))
        idx = rng.integers(0, 5, size=100)
        out = F.scatter_add(vals, idx, 5)
        for slot in range(5):
            assert np.allclose(out[slot], vals[idx == slot].sum(axis=0))

    def test_scatter_max(self):
        vals = np.array([[1.0], [7.0], [3.0]])
        out = F.scatter_max(vals, np.array([1, 1, 1]), 3, fill=-9.0)
        assert out.ravel().tolist() == [-9.0, 7.0, -9.0]


class TestInterpolation:
    def test_exact_at_source_points(self, rng):
        src = rng.random((20, 3))
        feats = rng.normal(size=(20, 4))
        out = F.three_nn_interpolate(src, src, feats)
        # Querying at the sources returns (nearly) the source features.
        assert np.allclose(out, feats, atol=1e-4)

    def test_interpolation_within_convex_range(self, rng):
        src = rng.random((30, 3))
        feats = rng.normal(size=(30, 1))
        tgt = rng.random((10, 3))
        out = F.three_nn_interpolate(tgt, src, feats)
        assert np.all(out >= feats.min() - 1e-9)
        assert np.all(out <= feats.max() + 1e-9)

    def test_weights_favor_nearest(self):
        src = np.array([[0.0, 0, 0], [1.0, 0, 0], [5.0, 0, 0]])
        feats = np.array([[0.0], [10.0], [100.0]])
        tgt = np.array([[0.05, 0.0, 0.0]])
        out = F.three_nn_interpolate(tgt, src, feats)
        assert out[0, 0] < 5.0  # dominated by the nearest source
