"""FleetSession mechanics: interleaving, QoS plumbing, stats, validation.

Bit-identity against cold oracles lives in
``tests/properties/test_prop_fleet.py``; these are the cheaper structural
checks, run at small scale.
"""

import pytest

from repro.cluster import EngineCluster
from repro.fleet import FleetSession, StreamSpec
from repro.stream import FrameSequence, SequenceConfig

SCALE = 0.12


def _spec(name, start_x=0.0, seed=5, n_frames=2, **kwargs):
    sequence = FrameSequence(SequenceConfig(
        seed=seed, n_frames=3, base_points=1800, fov=14.0, speed=2.0,
        n_dynamic=1, start_x=start_x,
    ))
    return StreamSpec(name=name, sequence=sequence, benchmark="MinkNet(o)",
                      scale=SCALE, n_frames=n_frames, **kwargs)


def _fleet(specs, **kwargs):
    kwargs.setdefault("n_shards", 1)
    kwargs.setdefault("min_points", 64)
    return FleetSession(specs, **kwargs)


class TestMechanics:
    def test_per_stream_in_order_delivery(self):
        fleet = _fleet([_spec("a", 0.0), _spec("b", 1.0)])
        results = fleet.run()
        assert set(results) == {"a", "b"}
        for frames in results.values():
            assert [f.index for f in frames] == [0, 1]
            assert all(f.completed for f in frames)

    def test_unequal_stream_lengths(self):
        fleet = _fleet([_spec("short", 0.0, n_frames=1),
                        _spec("long", 1.0, n_frames=3)])
        rounds = list(fleet.play())
        assert len(rounds) == 3
        assert [name for name, _ in rounds[0]] == ["short", "long"]
        for r in rounds[1:]:
            assert [name for name, _ in r] == ["long"]
        stats = fleet.stats()
        assert stats.frames == 4 and stats.rounds == 3

    def test_requests_carry_tenant_and_qos_terms(self):
        spec = _spec("veh7", deadline_ms=250.0, priority=3)
        fleet = _fleet([spec])
        request = fleet.request(spec, 1)
        assert request.tenant == "veh7"
        assert request.deadline_ms == 250.0
        assert request.priority == 3
        assert request.seed == 1
        assert request.geometry_only  # MinkNet -> sparseconv family

    def test_cluster_qos_rejects_spent_deadlines(self):
        fleet = _fleet([_spec("late", deadline_ms=-1.0),
                        _spec("fine", 1.0)], n_shards=2)
        results = fleet.run()
        assert all(f.rejected for f in results["late"])
        assert all(f.completed for f in results["fine"])
        stats = fleet.stats()
        assert stats.rejected == 2
        assert stats.per_stream["late"]["rejected"] == 2
        assert stats.per_stream["fine"]["completed"] == 2

    def test_cross_stream_hits_on_shared_world(self):
        fleet = _fleet([_spec("a", 0.0), _spec("b", 0.5)])
        fleet.run()
        ws = fleet.world_store.stats()
        assert ws.cross_hits > 0
        assert ws.shared_keys > 0
        summary = fleet.summary()
        assert summary["world_tiles"]["cross_hits"] == ws.cross_hits
        # The cluster surfaces the same front snapshot.
        assert fleet.executor.stats().front["cross_hits"] == ws.cross_hits

    def test_disjoint_worlds_share_nothing(self):
        fleet = _fleet([_spec("a", seed=5), _spec("b", seed=6)])
        fleet.run()
        assert fleet.world_store.stats().cross_hits == 0

    def test_share_world_tiles_off(self):
        fleet = _fleet([_spec("a", 0.0), _spec("b", 1.0)],
                       share_world_tiles=False)
        assert fleet.world_store is None
        results = fleet.run()
        assert all(f.completed for frames in results.values() for f in frames)
        assert "world_tiles" not in fleet.summary()
        assert fleet.summary()["tiles"]["tile_hits"] > 0

    def test_engine_executor(self):
        fleet = _fleet([_spec("a", 0.0), _spec("b", 1.0)], n_shards=0)
        results = fleet.run()
        assert all(f.completed for frames in results.values() for f in frames)
        assert fleet.world_store.stats().cross_hits > 0

    def test_injected_cluster(self):
        cluster = EngineCluster(n_shards=1)
        fleet = FleetSession([_spec("a")], cluster=cluster)
        assert fleet.executor is cluster
        assert fleet.world_store is None
        assert all(f.completed for f in fleet.run()["a"])


class TestValidation:
    def test_duplicate_or_empty_names(self):
        with pytest.raises(ValueError):
            FleetSession([_spec("a"), _spec("a", 1.0)])
        with pytest.raises(ValueError):
            FleetSession([_spec("")])

    def test_needs_a_stream(self):
        with pytest.raises(ValueError):
            FleetSession([])

    def test_one_executor_at_most(self):
        cluster = EngineCluster(n_shards=1)
        with pytest.raises(ValueError):
            FleetSession([_spec("a")], cluster=cluster, engine=cluster)

    def test_negative_shards(self):
        with pytest.raises(ValueError):
            FleetSession([_spec("a")], n_shards=-1)
