"""WorldTileStore: chained-front attribution stays exact.

The store wraps the streaming tile front and books every chain sub-lookup
against the requesting stream.  These tests pin the accounting contract
of the chained fronts: per op, the world store's
``self + cross + external`` hits equal the inner front's hits and its
misses equal the inner front's misses (attribution may never invent or
drop a lookup), the chain's tier stats still see every sub-lookup, and
the classification itself follows ownership (same tenant -> self,
other tenant -> cross, unknown owner -> external).
"""

import numpy as np
import pytest

from repro.engine import MapCache
from repro.fleet import WorldTileStore
from repro.mapping.hooks import TieredLookup, request_context, use_map_cache
from repro.mapping.knn import knn_indices
from repro.pointcloud.coords import voxelize
from repro.stream import TileMapCache


def _store(**kwargs):
    kwargs.setdefault("min_points", 1)
    inner = TileMapCache(**kwargs)
    store = WorldTileStore(inner)
    chain = TieredLookup([MapCache(max_entries=1 << 15)], front=store)
    return inner, store, chain


def _cloud(rng, n=400, span=16.0):
    return rng.uniform(0, span, (n, 3))


def _assert_counts_sum(store, inner):
    """Attribution must be a partition of the inner front's counters."""
    ws = store.stats()
    ts = inner.stats()
    assert ws.hits == ts.tile_hits
    assert ws.misses == ts.tile_misses
    assert set(ws.by_op) == set(ts.by_op)
    for op, world in ws.by_op.items():
        assert (
            world["self_hits"] + world["cross_hits"] + world["external_hits"]
            == ts.by_op[op]["hits"]
        ), op
        assert world["misses"] == ts.by_op[op]["misses"], op


class TestAttribution:
    def test_self_vs_cross_classification(self, rng):
        inner, store, chain = _store(tile_size=4.0)
        cloud = _cloud(rng)
        with use_map_cache(chain):
            with request_context("veh0"):
                knn_indices(cloud, cloud, 4)   # veh0 computes everything
            with request_context("veh0"):
                knn_indices(cloud, cloud, 4)   # veh0 again: self hits
            with request_context("veh1"):
                knn_indices(cloud, cloud, 4)   # veh1: cross hits
        ws = store.stats()
        assert ws.misses > 0 and ws.self_hits > 0 and ws.cross_hits > 0
        assert ws.self_hits == ws.cross_hits  # identical replays
        assert ws.shared_keys > 0
        assert ws.by_stream["veh0"]["misses"] > 0
        assert ws.by_stream["veh1"]["hits"] == ws.cross_hits
        _assert_counts_sum(store, inner)

    def test_results_identical_through_wrapping(self, rng):
        """The wrapper is observability only: same answers as the bare
        front, bit for bit."""
        queries = _cloud(rng, n=500)
        expect = knn_indices(queries, queries, 5)
        _, _, chain = _store(tile_size=4.0)
        with use_map_cache(chain), request_context("veh0"):
            cold = knn_indices(queries, queries, 5)
        with use_map_cache(chain), request_context("veh1"):
            warm = knn_indices(queries, queries, 5)
        assert np.array_equal(expect[0], cold[0])
        assert np.array_equal(expect[0], warm[0])

    def test_external_hits_on_unowned_keys(self, rng):
        """Entries already in the chain with no ownership record (a disk
        warm-start, in production) classify as external, not cross."""
        cloud = _cloud(rng)
        tier = MapCache(max_entries=1 << 15)
        inner_a = TileMapCache(min_points=1, tile_size=4.0)
        chain_a = TieredLookup([tier], front=inner_a)
        with use_map_cache(chain_a), request_context("veh0"):
            knn_indices(cloud, cloud, 4)  # populate the tier, no store
        inner, store, _ = _store(tile_size=4.0)
        chain_b = TieredLookup([tier], front=store)
        with use_map_cache(chain_b), request_context("veh1"):
            knn_indices(cloud, cloud, 4)
        ws = store.stats()
        assert ws.external_hits > 0 and ws.cross_hits == 0
        _assert_counts_sum(store, inner)

    def test_counts_sum_across_ops_and_fronts(self, rng):
        """Mixed op traffic (kNN + voxelize tiles) through two tenants:
        per-op counts line up front-to-front and reach the tier."""
        inner, store, chain = _store(tile_size=4.0, voxel_tile=8)
        cloud = _cloud(rng, n=600)
        with use_map_cache(chain):
            for tenant in ("veh0", "veh1"):
                with request_context(tenant):
                    knn_indices(cloud, cloud, 4)
                    voxelize(cloud, 0.25)
        _assert_counts_sum(store, inner)
        ws = store.stats()
        assert {"knn", "voxelize"} <= set(ws.by_op)
        # Every sub-lookup the fronts booked is also visible in the tier.
        tier_by_op = chain.stats().snapshot()["tiers"][0]["by_op"]
        for op in ("knn", "voxelize"):
            tier_counts = tier_by_op[op + "/tile"]
            assert (
                tier_counts["hits"] + tier_counts["misses"]
                == ws.by_op[op]["misses"]
                + ws.by_op[op]["self_hits"]
                + ws.by_op[op]["cross_hits"]
                + ws.by_op[op]["external_hits"]
            )

    def test_ownership_book_is_bounded(self, rng):
        inner, store, chain = _store(tile_size=2.0)
        store.max_owned_keys = 8
        cloud = _cloud(rng, n=600, span=30.0)
        with use_map_cache(chain), request_context("veh0"):
            knn_indices(cloud, cloud, 3)
        assert len(store._owners) <= 8

    def test_snapshot_shape(self, rng):
        inner, store, chain = _store(tile_size=4.0)
        cloud = _cloud(rng)
        with use_map_cache(chain), request_context("veh0"):
            knn_indices(cloud, cloud, 4)
        snap = store.stats().snapshot()
        assert snap["lookups"] == snap["self_hits"] + snap["cross_hits"] + \
            snap["external_hits"] + snap["misses"]
        assert "by_op" in snap and "by_stream" in snap
        assert snap["shared_keys"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            WorldTileStore(None)
        with pytest.raises(ValueError):
            WorldTileStore(TileMapCache(), max_owned_keys=0)
