"""Tests for comparator arrays and bitonic networks."""

import numpy as np
import pytest

from repro.core.mpu import (
    INVALID_KEY,
    ComparatorArray,
    bitonic_merge_network,
    bitonic_sort_network,
    merge_sorted_pair,
    merger_comparators,
    merger_stages,
    sorter_comparators,
    sorter_stages,
)


class TestComparatorArray:
    def test_from_keys_copies(self):
        keys = np.array([3, 1, 2], dtype=np.int64)
        arr = ComparatorArray.from_keys(keys)
        bitonic_sort_network(arr.pad_to(4))
        assert keys.tolist() == [3, 1, 2]  # caller array untouched

    def test_pad_and_valid_roundtrip(self):
        arr = ComparatorArray.from_keys(np.array([5, 1]))
        padded = arr.pad_to(8)
        assert len(padded) == 8
        assert padded.keys[-1] == INVALID_KEY
        assert padded.valid().keys.tolist() == [5, 1]

    def test_pad_too_small_raises(self):
        arr = ComparatorArray.from_keys(np.array([1, 2, 3]))
        with pytest.raises(ValueError):
            arr.pad_to(2)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            ComparatorArray(np.array([1, 2]), np.array([1]))

    def test_concat_and_slice(self):
        a = ComparatorArray.from_keys(np.array([1, 2]))
        b = ComparatorArray.from_keys(np.array([3]))
        c = a.concat(b)
        assert c.keys.tolist() == [1, 2, 3]
        assert c[1:].keys.tolist() == [2, 3]

    def test_is_sorted(self):
        assert ComparatorArray.from_keys(np.array([1, 2, 2, 5])).is_sorted()
        assert not ComparatorArray.from_keys(np.array([2, 1])).is_sorted()


class TestStageCounts:
    @pytest.mark.parametrize("width,expected", [(2, 1), (8, 3), (64, 6)])
    def test_merger_stages(self, width, expected):
        assert merger_stages(width) == expected

    @pytest.mark.parametrize("width,expected", [(2, 1), (8, 6), (64, 21)])
    def test_sorter_stages(self, width, expected):
        assert sorter_stages(width) == expected

    def test_comparator_counts(self):
        assert merger_comparators(8) == 3 * 4
        assert sorter_comparators(8) == 6 * 4

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            merger_stages(6)
        with pytest.raises(ValueError):
            sorter_stages(1)


class TestNetworks:
    @pytest.mark.parametrize("n", [2, 4, 8, 32, 128])
    def test_sort_matches_numpy(self, n, rng):
        for _ in range(3):
            keys = rng.integers(0, 100, size=n)
            arr = ComparatorArray.from_keys(keys)
            stats = bitonic_sort_network(arr)
            assert np.array_equal(arr.keys, np.sort(keys))
            assert np.array_equal(keys[arr.payloads], arr.keys)
            assert stats.stages == sorter_stages(n)
            assert stats.compare_ops == sorter_comparators(n)

    def test_sort_with_duplicates(self, rng):
        keys = rng.integers(0, 4, size=64)  # heavy duplication
        arr = ComparatorArray.from_keys(keys)
        bitonic_sort_network(arr)
        assert np.array_equal(arr.keys, np.sort(keys))
        assert sorted(arr.payloads.tolist()) == list(range(64))

    def test_merge_network_on_bitonic_input(self, rng):
        asc = np.sort(rng.integers(0, 50, size=8))
        desc = np.sort(rng.integers(0, 50, size=8))[::-1]
        arr = ComparatorArray.from_keys(np.concatenate([asc, desc]))
        bitonic_merge_network(arr)
        assert arr.is_sorted()

    @pytest.mark.parametrize("n", [2, 8, 32])
    def test_merge_sorted_pair(self, n, rng):
        a = np.sort(rng.integers(0, 99, size=n))
        b = np.sort(rng.integers(0, 99, size=n))
        merged, stats = merge_sorted_pair(
            ComparatorArray.from_keys(a), ComparatorArray.from_keys(b)
        )
        assert np.array_equal(merged.keys, np.sort(np.concatenate([a, b])))
        assert stats.stages == merger_stages(2 * n)

    def test_merge_requires_sorted_inputs(self):
        a = ComparatorArray.from_keys(np.array([2, 1]))
        b = ComparatorArray.from_keys(np.array([1, 2]))
        with pytest.raises(ValueError):
            merge_sorted_pair(a, b)

    def test_merge_requires_equal_lengths(self):
        a = ComparatorArray.from_keys(np.array([1, 2]))
        b = ComparatorArray.from_keys(np.array([1, 2, 3, 4]))
        with pytest.raises(ValueError):
            merge_sorted_pair(a, b)

    def test_merger_cheaper_than_sorter(self):
        """The whole point of merge-based design: merging two sorted halves
        costs log(N) stages, not log^2(N)."""
        assert merger_stages(64) < sorter_stages(64)
