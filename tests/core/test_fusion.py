"""Tests for the temporal layer-fusion planner and stack simulation."""

import pytest

from repro.core.mmu import (
    FusionGroup,
    FusionPlanner,
    find_fusible_chains,
    simulate_fusion_stack,
)
from repro.nn.trace import LayerKind, LayerSpec, Trace


def dense(name, rows, c_in, c_out, fusible=True):
    return LayerSpec(
        name=name, kind=LayerKind.DENSE_MM, n_in=rows, n_out=rows,
        c_in=c_in, c_out=c_out, rows=rows, fusible=fusible,
    )


def pool(rows, c, kind=LayerKind.POOL_MAX, n_out=None):
    return LayerSpec(
        name="pool", kind=kind, n_in=rows, n_out=n_out or rows // 4,
        c_in=c, c_out=c, rows=rows,
    )


@pytest.fixture
def planner():
    return FusionPlanner(
        feature_buffer_bytes=64 * 1024, weight_buffer_bytes=64 * 1024
    )


class TestChains:
    def test_pool_breaks_chain(self):
        trace = Trace()
        trace.record(dense("a", 128, 8, 8))
        trace.record(dense("b", 128, 8, 8))
        trace.record(pool(128, 8))
        trace.record(dense("c", 32, 8, 8))
        chains = find_fusible_chains(trace)
        assert [len(c) for c, _ in chains] == [2, 1]

    def test_row_change_breaks_chain(self):
        trace = Trace()
        trace.record(dense("a", 128, 8, 8))
        trace.record(dense("b", 64, 8, 8))
        chains = find_fusible_chains(trace)
        assert [len(c) for c, _ in chains] == [1, 1]

    def test_global_pool_flag(self):
        trace = Trace()
        trace.record(dense("a", 128, 8, 8))
        trace.record(pool(128, 8, kind=LayerKind.GLOBAL_POOL, n_out=1))
        trace.record(dense("b", 1, 8, 8))
        chains = find_fusible_chains(trace)
        assert chains[0][1] is True  # feeds a global pool
        assert chains[1][1] is False

    def test_non_fusible_dense_excluded(self):
        trace = Trace()
        trace.record(dense("a", 128, 8, 8, fusible=False))
        assert find_fusible_chains(trace) == []


class TestPlanner:
    def test_fuses_within_budget(self, planner):
        chain = [dense(f"l{i}", 256, 16, 16) for i in range(4)]
        groups = planner.plan_chain(chain)
        assert len(groups) == 1
        assert groups[0].n_layers == 4
        assert groups[0].tile_points >= planner.min_tile_points

    def test_drops_last_layer_on_weight_overflow(self):
        planner = FusionPlanner(
            feature_buffer_bytes=64 * 1024, weight_buffer_bytes=2048
        )
        # Third layer's weights (64x64x2 = 8 KB) overflow a 2 KB buffer.
        chain = [dense("a", 256, 4, 8), dense("b", 256, 8, 8),
                 dense("c", 256, 8, 64), dense("d", 256, 64, 64)]
        groups = planner.plan_chain(chain)
        assert len(groups) >= 2
        assert all(
            sum(s.c_in * s.c_out for s in g.specs) * 2 <= 2048
            or g.n_layers == 1
            for g in groups
        )

    def test_fused_traffic_less_than_unfused(self, planner):
        chain = [dense(f"l{i}", 512, 32, 32) for i in range(3)]
        group = planner.plan_chain(chain)[0]
        assert group.dram_bytes(2) < group.unfused_dram_bytes(2)

    def test_singleton_group_no_benefit(self, planner):
        group = planner.plan_chain([dense("a", 100, 8, 8)])[0]
        assert group.dram_bytes(2) == group.unfused_dram_bytes(2)

    def test_elide_output_reduces_writes(self, planner):
        trace = Trace()
        trace.record(dense("a", 512, 16, 256))
        trace.record(pool(512, 256, kind=LayerKind.GLOBAL_POOL, n_out=1))
        plan = planner.plan(trace)
        assert plan.groups[0].elide_output
        not_elided = FusionGroup(
            specs=plan.groups[0].specs,
            tile_points=plan.groups[0].tile_points,
        )
        assert plan.groups[0].dram_bytes(2) < not_elided.dram_bytes(2)

    def test_plan_reduction_metric(self, planner):
        trace = Trace()
        for i in range(4):
            trace.record(dense(f"l{i}", 1024, 64, 64))
        plan = planner.plan(trace)
        assert 0.0 < plan.reduction(2) < 1.0

    def test_invalid_buffers(self):
        with pytest.raises(ValueError):
            FusionPlanner(0, 1024)


class TestStackSimulation:
    def test_all_rows_computed_each_layer(self, planner):
        chain = [dense(f"l{i}", 300, 16, 16) for i in range(3)]
        group = planner.plan_chain(chain)[0]
        result = simulate_fusion_stack(group, 64 * 1024)
        assert result["rows_computed"] == [300, 300, 300]

    def test_never_exceeds_buffer(self, planner):
        chain = [dense("a", 500, 8, 32), dense("b", 500, 32, 64),
                 dense("c", 500, 64, 16)]
        group = planner.plan_chain(chain)[0]
        result = simulate_fusion_stack(group, 64 * 1024)
        assert result["peak_bytes"] <= 64 * 1024

    def test_deep_stack_with_tight_buffer(self):
        """Force the Fig. 12 sub-tiling: a tile too big to flow through in
        one chunk leaves a partially-consumed tile under the next layer's
        push — stack depth >= 2, exactly the paper's staged walkthrough."""
        chain = [dense("a", 64, 16, 64), dense("b", 64, 64, 64),
                 dense("c", 64, 64, 16)]
        group = FusionGroup(specs=chain, tile_points=64)
        result = simulate_fusion_stack(group, 6 * 1024)
        assert result["peak_depth"] >= 2
        assert result["peak_bytes"] <= 6 * 1024
        assert all(r == 64 for r in result["rows_computed"])

    def test_planner_tiles_keep_stack_within_plan(self):
        """Tiles chosen by the planner's sum-of-widths bound always flow
        without overflowing the physical buffer."""
        planner = FusionPlanner(
            feature_buffer_bytes=8 * 1024, weight_buffer_bytes=64 * 1024,
            min_tile_points=8,
        )
        chain = [dense(f"l{i}", 256, 64, 64) for i in range(3)]
        groups = planner.plan_chain(chain)
        for group in groups:
            result = simulate_fusion_stack(group, 8 * 1024)
            assert result["peak_bytes"] <= 8 * 1024
            assert all(r == group.rows for r in result["rows_computed"])

    def test_stack_empties_between_tiles(self, planner):
        chain = [dense("a", 100, 8, 8), dense("b", 100, 8, 8)]
        group = planner.plan_chain(chain)[0]
        group.tile_points = 32  # multiple tiles
        result = simulate_fusion_stack(group, 64 * 1024)
        assert result["rows_computed"] == [100, 100]
