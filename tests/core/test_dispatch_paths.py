"""Dispatch-completeness tests: every LayerKind through every machine model.

Guards against silent gaps when new op kinds are added: each machine must
either cost an op or reject it loudly.
"""

import pytest

from repro.baselines import MESORASI_HW, get_platform
from repro.core import PointAccModel, POINTACC_FULL
from repro.nn.trace import LayerKind, LayerSpec, Trace


def spec_for(kind: LayerKind) -> LayerSpec:
    common = dict(n_in=256, n_out=64, c_in=16, c_out=16, rows=256)
    if kind is LayerKind.SPARSE_CONV:
        return LayerSpec(name="x", kind=kind, n_maps=1024, kernel_volume=27,
                         **{**common, "rows": 1024})
    if kind in (LayerKind.GATHER, LayerKind.SCATTER):
        return LayerSpec(name="x", kind=kind, n_maps=512, **common)
    if kind in (LayerKind.MAP_KNN, LayerKind.MAP_BALL):
        return LayerSpec(name="x", kind=kind, n_maps=512, kernel_volume=8,
                         **common)
    if kind is LayerKind.MAP_KERNEL:
        return LayerSpec(name="x", kind=kind, n_maps=512, kernel_volume=27,
                         **common)
    return LayerSpec(name="x", kind=kind, **common)


ALL_KINDS = list(LayerKind)


class TestPointAccDispatch:
    @pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
    def test_every_kind_handled(self, kind):
        trace = Trace()
        trace.record(spec_for(kind))
        rep = PointAccModel(POINTACC_FULL).run(trace)
        if kind.is_movement:
            assert rep.records == []  # absorbed by the MMU
        else:
            assert len(rep.records) == 1
            assert rep.records[0].seconds > 0

    def test_random_sampling_cheaper_than_fps(self):
        fps = Trace()
        fps.record(spec_for(LayerKind.MAP_FPS))
        rnd = Trace()
        rnd.record(spec_for(LayerKind.MAP_RANDOM))
        model = PointAccModel(POINTACC_FULL)
        assert (model.run(rnd).total_seconds
                < model.run(fps).total_seconds)


class TestPlatformDispatch:
    @pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
    def test_every_kind_handled(self, kind):
        trace = Trace()
        trace.record(spec_for(kind))
        rep = get_platform("RTX 2080Ti").run(trace)
        assert len(rep.records) == 1
        assert rep.records[0].seconds > 0

    def test_movement_costed_not_absorbed(self):
        trace = Trace()
        trace.record(spec_for(LayerKind.GATHER))
        rep = get_platform("Xeon Gold 6130").run(trace)
        assert rep.latency_breakdown()["movement"] > 0


class TestMesorasiDispatch:
    @pytest.mark.parametrize(
        "kind",
        [k for k in ALL_KINDS if k is not LayerKind.SPARSE_CONV],
        ids=lambda k: k.value,
    )
    def test_non_sparse_kinds_handled(self, kind):
        trace = Trace()
        trace.record(spec_for(kind))
        rep = MESORASI_HW.run(trace, apply_transform=False)
        assert len(rep.records) == 1

    def test_sparse_conv_rejected(self):
        trace = Trace()
        trace.record(spec_for(LayerKind.SPARSE_CONV))
        from repro.baselines import UnsupportedModelError

        with pytest.raises(UnsupportedModelError):
            MESORASI_HW.run(trace, apply_transform=False)
