"""Tests for MIR container, cache, dataflows and the MMU."""

import numpy as np
import pytest

from repro.core.config import POINTACC_FULL
from repro.core.mmu import (
    CacheConfig,
    InputFeatureCache,
    MIRContainer,
    MemoryManagementUnit,
    fetch_on_demand_cost,
    gather_matmul_scatter_cost,
    simulate_conv_cache,
)
from repro.mapping.kernel_map import kernel_map_mergesort
from repro.mapping.maps import MapTable
from repro.nn.trace import LayerKind, LayerSpec


class TestMIRContainer:
    def test_stack_push_pop(self):
        c = MIRContainer(1024, 4)
        a = c.push(256)
        b = c.push(128)
        assert c.top() is b
        assert c.allocated_bytes == 384
        assert c.pop() is b
        assert c.top() is a

    def test_overflow_raises(self):
        c = MIRContainer(100, 4)
        c.push(80)
        with pytest.raises(OverflowError):
            c.push(30)

    def test_entry_limit(self):
        c = MIRContainer(1000, 2)
        c.push(10)
        c.push(10)
        with pytest.raises(OverflowError):
            c.push(10)

    def test_shrink_top_releases_and_pops_at_zero(self):
        c = MIRContainer(1024, 4)
        c.push(100)
        c.shrink_top(40)
        assert c.top().capacity == 60
        c.shrink_top(60)
        assert len(c) == 0

    def test_shrink_beyond_occupancy_raises(self):
        c = MIRContainer(1024, 4)
        c.push(100)
        with pytest.raises(ValueError):
            c.shrink_top(200)

    def test_fifo_semantics(self):
        c = MIRContainer(1024, 4)
        a = c.enqueue(10)
        b = c.enqueue(20)
        assert c.front() is a
        assert c.dequeue() is a
        assert c.front() is b

    def test_empty_access_raises(self):
        c = MIRContainer(64, 2)
        with pytest.raises(IndexError):
            c.top()
        with pytest.raises(IndexError):
            c.dequeue()

    def test_tag_array_mode(self):
        c = MIRContainer(1024, 8)
        c.init_tag_array(n_sets=4, block_bytes=256)
        assert not c.lookup(0, tag=7)  # cold miss installs
        assert c.lookup(0, tag=7)  # now hits
        assert not c.lookup(0, tag=9)  # conflict evicts
        assert not c.lookup(0, tag=7)

    def test_tag_array_capacity_check(self):
        c = MIRContainer(512, 8)
        with pytest.raises(OverflowError):
            c.init_tag_array(n_sets=4, block_bytes=256)


class TestCache:
    def test_config_geometry(self):
        cfg = CacheConfig(capacity_bytes=4096, block_points=4, c_in=16)
        assert cfg.point_bytes == 32
        assert cfg.block_bytes == 128
        assert cfg.n_sets == 32
        assert cfg.words_per_point == 1

    def test_capacity_below_block_raises(self):
        with pytest.raises(ValueError):
            CacheConfig(capacity_bytes=64, block_points=64, c_in=64)

    def test_sequential_stream_mostly_hits(self):
        cfg = CacheConfig(capacity_bytes=4096, block_points=8, c_in=16)
        cache = InputFeatureCache(cfg)
        for p in range(64):
            cache.access_point(p)
        # One miss per block of 8 points.
        assert cache.stats.misses == 8

    def test_vectorized_equals_stepwise(self, rng):
        for _ in range(10):
            n_in = int(rng.integers(8, 200))
            n_maps = int(rng.integers(1, 1500))
            mt = MapTable(
                rng.integers(0, n_in, n_maps),
                rng.integers(0, n_in, n_maps),
                rng.integers(0, 27, n_maps),
                kernel_volume=27,
            )
            cfg = CacheConfig(
                capacity_bytes=2048,
                block_points=int(rng.choice([1, 2, 4])),
                c_in=int(rng.choice([8, 32, 64])),
            )
            fast = simulate_conv_cache(mt, cfg)
            slow = InputFeatureCache(cfg)
            for p in mt.sorted_by(by="weight").in_idx.tolist():
                slow.access_point(int(p))
            assert fast.misses == slow.stats.misses
            assert fast.accesses == slow.stats.accesses

    def test_miss_rate_decreases_with_block_size(self, voxel_tensor):
        maps = kernel_map_mergesort(voxel_tensor.coords, voxel_tensor.coords, 3, 1)
        rates = []
        for block in (1, 4, 16, 64):
            cfg = CacheConfig(capacity_bytes=64 * 1024, block_points=block, c_in=64)
            rates.append(simulate_conv_cache(maps, cfg).miss_rate)
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_miss_rate_halves_with_double_channels(self, voxel_tensor):
        """Fig. 18: wider features -> more words per (missing) first touch."""
        maps = kernel_map_mergesort(voxel_tensor.coords, voxel_tensor.coords, 3, 1)
        r64 = simulate_conv_cache(
            maps, CacheConfig(64 * 1024, 1, 64)
        ).miss_rate
        r128 = simulate_conv_cache(
            maps, CacheConfig(64 * 1024, 1, 128)
        ).miss_rate
        assert r128 == pytest.approx(r64 / 2, rel=0.1)

    def test_empty_maps(self):
        mt = MapTable(np.empty(0), np.empty(0), np.empty(0), 27)
        stats = simulate_conv_cache(mt, CacheConfig(1024, 1, 16))
        assert stats.accesses == 0 and stats.miss_rate == 0.0


def _conv_spec(n_in=500, n_out=500, c_in=32, c_out=32, n_maps=5000, kv=27):
    return LayerSpec(
        name="conv", kind=LayerKind.SPARSE_CONV, n_in=n_in, n_out=n_out,
        c_in=c_in, c_out=c_out, rows=n_maps, n_maps=n_maps, kernel_volume=kv,
    )


class TestDataflows:
    def test_gs_flow_bytes_breakdown(self):
        spec = _conv_spec()
        cost = gather_matmul_scatter_cost(spec, elem_bytes=2)
        eb = 2
        assert cost.input_read == 5000 * 32 * eb
        assert cost.gathered_write == cost.gathered_read == 5000 * 32 * eb
        assert cost.psum_write == cost.psum_read == 5000 * 32 * eb
        assert cost.output_write == 500 * 32 * eb
        assert cost.total_bytes == cost.read_bytes + cost.write_bytes

    def test_fd_saves_input_traffic_3x(self, voxel_tensor):
        """Paper Section 4.2.3: F-D saves input-feature DRAM by >= 3x."""
        maps = kernel_map_mergesort(voxel_tensor.coords, voxel_tensor.coords, 3, 1)
        spec = _conv_spec(
            n_in=voxel_tensor.n, n_out=voxel_tensor.n, n_maps=maps.n_maps
        )
        gs = gather_matmul_scatter_cost(spec, 2)
        fd, stats = fetch_on_demand_cost(spec, 256 * 1024, maps=maps)
        assert stats is not None
        assert gs.input_feature_bytes / fd.input_read >= 3.0

    def test_fd_analytical_fallback(self):
        spec = _conv_spec()
        cost, stats = fetch_on_demand_cost(spec, 256 * 1024, maps=None)
        assert stats is None
        assert cost.input_read >= spec.n_in * spec.c_in * 2  # >= cold pass

    def test_wrong_kind_rejected(self):
        dense = LayerSpec(name="d", kind=LayerKind.DENSE_MM, n_in=1, n_out=1,
                          c_in=4, c_out=4, rows=1)
        with pytest.raises(ValueError):
            gather_matmul_scatter_cost(dense)
        with pytest.raises(ValueError):
            fetch_on_demand_cost(dense, 1024)


class TestMMUUnit:
    def test_block_size_autotuning_picks_minimum(self, voxel_tensor):
        mmu = MemoryManagementUnit(POINTACC_FULL)
        maps = kernel_map_mergesort(voxel_tensor.coords, voxel_tensor.coords, 3, 1)
        spec = _conv_spec(
            n_in=voxel_tensor.n, n_out=voxel_tensor.n, n_maps=maps.n_maps
        )
        cost = mmu.sparse_conv_cost(spec, maps)
        assert cost.block_points in (1, 2, 4, 8, 16, 32, 64, 128)
        # Chosen block is at least as good as fixed block=1.
        fixed, _ = fetch_on_demand_cost(
            spec, mmu.input_buffer_bytes, block_points=1, maps=maps
        )
        assert cost.total_bytes <= fixed.total_bytes

    def test_fd_beats_gs_for_whole_layer(self, voxel_tensor):
        mmu = MemoryManagementUnit(POINTACC_FULL)
        maps = kernel_map_mergesort(voxel_tensor.coords, voxel_tensor.coords, 3, 1)
        spec = LayerSpec(
            name="c", kind=LayerKind.SPARSE_CONV, n_in=voxel_tensor.n,
            n_out=voxel_tensor.n, c_in=32, c_out=32, rows=maps.n_maps,
            n_maps=maps.n_maps, kernel_volume=27, params={"maps": maps},
        )
        fd = mmu.sparse_conv_cost(spec)
        gs = mmu.gather_scatter_cost(spec)
        assert fd.total_bytes < gs.total_bytes

    def test_dense_costs(self):
        mmu = MemoryManagementUnit(POINTACC_FULL)
        dense = LayerSpec(name="d", kind=LayerKind.DENSE_MM, n_in=100,
                          n_out=100, c_in=8, c_out=16, rows=100, fusible=True)
        cost = mmu.unfused_dense_cost(dense)
        eb = 2
        assert cost.dram_read_bytes == 100 * 8 * eb + 8 * 16 * eb
        assert cost.dram_write_bytes == 100 * 16 * eb
