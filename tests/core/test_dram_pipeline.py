"""Tests for the DRAM timing model and the six-stage MPU pipeline."""

import numpy as np
import pytest

from repro.core.mmu.dram import (
    DRAMTimingModel,
    TIMINGS,
    sequential_vs_random_gap,
)
from repro.core.mpu.pipeline import MPUPipeline, STAGES, StageTrace
from repro.mapping import kernel_map_hash
from repro.pointcloud import generate_sample
from repro.pointcloud.coords import kernel_offsets


class TestDRAMTiming:
    def test_sequential_trace_hits_rows(self):
        model = DRAMTimingModel(TIMINGS["DDR4-2133"])
        addrs = np.arange(500) * 64
        stats = model.run_trace(addrs, 64)
        assert stats.row_hit_rate > 0.9
        assert stats.bytes == 500 * 64

    def test_random_trace_misses_rows(self):
        rng = np.random.default_rng(0)
        model = DRAMTimingModel(TIMINGS["HBM2"])
        addrs = rng.integers(0, 2**26, size=500)
        stats = model.run_trace(addrs, 64)
        assert stats.row_hit_rate < 0.3

    def test_sequential_faster_than_random(self):
        for name, timing in TIMINGS.items():
            gap = sequential_vs_random_gap(timing, n_requests=400)
            assert gap["sequential_gbps"] > gap["random_gbps"], name

    def test_row_misses_cost_activation_energy(self):
        timing = TIMINGS["DDR4-2133"]
        model = DRAMTimingModel(timing)
        model.access(0, 64)  # cold: one activation
        e_first = model.stats.energy_pj
        model.access(64, 64)  # same row: no activation
        e_second = model.stats.energy_pj - e_first
        assert e_first - e_second == pytest.approx(timing.e_activate_pj)

    def test_large_access_splits_into_bursts(self):
        timing = TIMINGS["DDR4-2133"]
        model = DRAMTimingModel(timing)
        model.access(0, 256)
        assert model.stats.accesses == 256 // timing.bus_bytes

    def test_invalid_size(self):
        model = DRAMTimingModel(TIMINGS["HBM2"])
        with pytest.raises(ValueError):
            model.access(0, 0)

    def test_reset(self):
        model = DRAMTimingModel(TIMINGS["HBM2"])
        model.access(0, 64)
        model.reset()
        assert model.stats.accesses == 0

    def test_hbm_fastest_sequential(self):
        bws = {
            name: sequential_vs_random_gap(t, n_requests=400)["sequential_gbps"]
            for name, t in TIMINGS.items()
        }
        assert bws["HBM2"] > bws["DDR4-2133"] > bws["LPDDR3-1600"]


@pytest.fixture(scope="module")
def small_scene():
    cloud = generate_sample("s3dis", seed=5, n_points=600)
    return cloud, cloud.voxelize(0.2)


class TestMPUPipeline:
    def test_stage_trace_validation(self):
        trace = StageTrace()
        with pytest.raises(ValueError):
            trace.touch("XX", 1)

    def test_kernel_mapping_path(self, small_scene):
        _, tensor = small_scene
        pipe = MPUPipeline(width=16)
        maps, trace = pipe.kernel_mapping(
            tensor.coords, tensor.coords, kernel_offsets(3, 3)
        )
        ref = kernel_map_hash(tensor.coords, tensor.coords, 3, 1)
        assert set(maps) == ref.as_set()
        # Fig. 7 red path: merge + detect-intersection, no distance stage.
        assert trace.active_stages() == ["FS", "MS", "DI"]
        assert trace.elements["CD"] == 0

    def test_knn_path(self, small_scene):
        cloud, _ = small_scene
        pipe = MPUPipeline(width=16)
        assert pipe.verify_knn(cloud.points[:8], cloud.points, 6)
        _, trace = pipe.knn(cloud.points[:8], cloud.points, 6)
        # Fig. 7 green path: DI bypassed, MS->BF loop active.
        assert "DI" not in trace.active_stages()
        assert "MS->BF" in trace.loops

    def test_fps_path(self, small_scene):
        cloud, _ = small_scene
        pipe = MPUPipeline(width=16)
        assert pipe.verify_fps(cloud.points, 16)
        _, trace = pipe.fps(cloud.points, 16)
        # Fig. 7 blue path: forwarding through FS/CD/ST only.
        assert trace.active_stages() == ["FS", "CD", "ST"]
        assert {"CD->FS", "ST->CD"} <= trace.loops

    def test_stage_names_constant(self):
        assert STAGES == ("FS", "CD", "ST", "BF", "MS", "DI")

    def test_downsampled_kernel_mapping(self, small_scene):
        _, tensor = small_scene
        down = tensor.downsample(2)
        pipe = MPUPipeline(width=16)
        offsets = kernel_offsets(2, 3) * tensor.tensor_stride
        maps, _ = pipe.kernel_mapping(tensor.coords, down.coords, offsets)
        ref = kernel_map_hash(tensor.coords, down.coords, 2,
                              tensor.tensor_stride)
        assert set(maps) == ref.as_set()
