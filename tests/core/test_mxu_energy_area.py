"""Tests for the Matrix Unit, energy model, area model and configs."""

import numpy as np
import pytest

from repro.core import (
    AreaModel,
    DEFAULT_ENERGY,
    EnergyLedger,
    POINTACC_EDGE,
    POINTACC_FULL,
    sram_pj_per_byte,
)
from repro.core.config import DRAMSpec, HBM2, SRAMBudget
from repro.core.mxu import MatrixUnit, systolic_matmul
from repro.nn.trace import LayerKind, LayerSpec


class TestSystolicFunctional:
    @pytest.mark.parametrize(
        "n,c_in,c_out,rows,cols",
        [(4, 3, 3, 4, 4), (6, 4, 8, 4, 8), (1, 2, 2, 2, 2), (9, 8, 4, 8, 4)],
    )
    def test_matches_numpy(self, n, c_in, c_out, rows, cols, rng):
        x = rng.normal(size=(n, c_in))
        w = rng.normal(size=(c_in, c_out))
        out, cycles = systolic_matmul(x, w, rows, cols)
        assert np.allclose(out, x @ w)
        assert cycles == n + rows + cols - 1

    def test_tile_too_large_rejected(self, rng):
        with pytest.raises(ValueError):
            systolic_matmul(rng.normal(size=(2, 8)), rng.normal(size=(8, 2)), 4, 4)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            systolic_matmul(rng.normal(size=(2, 3)), rng.normal(size=(4, 2)), 4, 4)


class TestMatrixUnitCosts:
    def test_dense_cycles_single_tile(self):
        mxu = MatrixUnit(64, 64)
        stats = mxu.dense_mm(1000, 64, 64)
        assert stats.cycles == 1000 + 127
        assert stats.macs == 1000 * 64 * 64

    def test_dense_cycles_tiled(self):
        mxu = MatrixUnit(64, 64)
        stats = mxu.dense_mm(1000, 128, 256)
        assert stats.cycles == 2 * 4 * (1000 + 127)

    def test_sparse_conv_streams_maps(self):
        mxu = MatrixUnit(64, 64)
        spec = LayerSpec(
            name="c", kind=LayerKind.SPARSE_CONV, n_in=100, n_out=100,
            c_in=64, c_out=64, rows=2700, n_maps=2700, kernel_volume=27,
        )
        stats = mxu.sparse_conv(spec)
        assert stats.cycles == 2700 + 27 * 127
        assert stats.macs == 2700 * 64 * 64

    def test_utilization_high_for_long_streams(self):
        mxu = MatrixUnit(64, 64)
        stats = mxu.dense_mm(100_000, 64, 64)
        util = stats.macs / (stats.cycles * 64 * 64)
        assert util > 0.99

    def test_spec_cost_dispatch(self):
        mxu = MatrixUnit(16, 16)
        dense = LayerSpec(name="d", kind=LayerKind.DENSE_MM, n_in=10,
                          n_out=10, c_in=4, c_out=4, rows=10)
        assert mxu.spec_cost(dense).macs == 160
        pool = LayerSpec(name="p", kind=LayerKind.POOL_MAX, n_in=10,
                         n_out=5, rows=10)
        with pytest.raises(ValueError):
            mxu.spec_cost(pool)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            MatrixUnit(0, 4)


class TestEnergy:
    def test_sram_energy_grows_with_macro_size(self):
        assert sram_pj_per_byte(256) > sram_pj_per_byte(16)
        with pytest.raises(ValueError):
            sram_pj_per_byte(0)

    def test_ledger_accumulates(self):
        a = EnergyLedger(compute_pj=10, sram_pj=5, dram_pj=3)
        b = EnergyLedger(compute_pj=1, static_pj=2)
        a.add(b)
        assert a.total_pj == 21
        assert a.total_joules == pytest.approx(21e-12)

    def test_breakdown_sums_to_one(self):
        ledger = EnergyLedger(compute_pj=70, sram_pj=10, dram_pj=20)
        pie = ledger.breakdown()
        assert sum(pie.values()) == pytest.approx(1.0)
        assert pie["compute"] == pytest.approx(0.7)

    def test_breakdown_empty(self):
        assert EnergyLedger().breakdown() == {
            "compute": 0.0, "sram": 0.0, "dram": 0.0
        }


class TestConfigs:
    def test_table3_peak_performance(self):
        assert POINTACC_FULL.peak_ops == pytest.approx(8.192e12)  # 8 TOPS
        assert POINTACC_EDGE.peak_ops == pytest.approx(512e9)  # 512 GOPS

    def test_table3_sram_totals(self):
        assert POINTACC_FULL.sram.total_kb == pytest.approx(776.0)
        assert POINTACC_EDGE.sram.total_kb == pytest.approx(274.0)

    def test_table3_bandwidth(self):
        assert POINTACC_FULL.dram.bandwidth_gbps == 256.0
        assert POINTACC_EDGE.dram.bandwidth_gbps == 17.0

    def test_dram_transfer_math(self):
        assert HBM2.transfer_seconds(256e9) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            HBM2.transfer_seconds(-1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DRAMSpec("x", 10.0, 1.0).transfer_seconds(-5)

    def test_sram_budget_bytes(self):
        budget = SRAMBudget(1, 1, 1, 1, 1, 1, 2)
        assert budget.total_kb == 8
        assert budget.total_bytes == 8192


class TestArea:
    def test_full_area_matches_table3(self):
        assert AreaModel(POINTACC_FULL).total_mm2 == pytest.approx(15.7, rel=0.05)

    def test_edge_area_near_table3(self):
        # Component model lands within ~15% of the synthesized 3.9 mm2.
        assert AreaModel(POINTACC_EDGE).total_mm2 == pytest.approx(3.9, rel=0.15)

    def test_hash_design_larger(self):
        for cfg in (POINTACC_FULL, POINTACC_EDGE):
            model = AreaModel(cfg)
            assert model.hash_vs_mergesort_ratio() > 5.0

    def test_paper_14x_claim_reached(self):
        """'saving up to 14x area': the max over configurations ~14x."""
        ratios = [
            AreaModel(cfg).hash_vs_mergesort_ratio()
            for cfg in (POINTACC_FULL, POINTACC_EDGE)
        ]
        assert max(ratios) == pytest.approx(14.0, rel=0.15)

    def test_breakdown_components_positive(self):
        b = AreaModel(POINTACC_FULL).breakdown()
        assert b.pe_array > 0 and b.sram > 0 and b.mpu_logic > 0
        assert b.total > b.pe_array + b.sram  # includes overhead
