"""Tests for the streaming merger (Fig. 10a) and Sort/TopK (Fig. 10b/c)."""

import numpy as np
import pytest

from repro.core.mpu import (
    ComparatorArray,
    StreamingMerger,
    mpu_sort,
    mpu_topk,
    quickselect_topk_cycles,
    sort_cycles,
    streaming_merge_cycles,
    topk_cycles,
)


def make(keys, tag=0):
    keys = np.asarray(keys, dtype=np.int64)
    return ComparatorArray(keys.copy(), np.arange(len(keys)) + tag * 1000)


class TestStreamingMerger:
    def test_paper_example_shape(self):
        """Fig. 10a: width-8 merger, two streams of 8 elements."""
        a = make([1, 2, 3, 4, 5, 6, 7, 8])
        b = make([2, 3, 4, 5, 6, 7, 8, 9], tag=1)
        merged, stats = StreamingMerger(8).merge(a, b)
        assert merged.keys.tolist() == sorted(a.keys.tolist() + b.keys.tolist())
        assert stats.cycles == streaming_merge_cycles(8, 8, 8)

    @pytest.mark.parametrize("width", [4, 8, 32])
    def test_random_merges(self, width, rng):
        merger = StreamingMerger(width)
        for _ in range(30):
            la, lb = rng.integers(0, 60, size=2)
            a = np.sort(rng.integers(0, 40, size=la))
            b = np.sort(rng.integers(0, 40, size=lb))
            merged, stats = merger.merge(make(a), make(b, tag=1))
            assert merged.keys.tolist() == sorted(a.tolist() + b.tolist())
            assert stats.cycles == streaming_merge_cycles(la, lb, width)

    def test_payload_multiset_preserved(self, rng):
        a = np.sort(rng.integers(0, 10, size=17))
        b = np.sort(rng.integers(0, 10, size=9))
        merged, _ = StreamingMerger(8).merge(make(a), make(b, tag=1))
        expect = list(range(17)) + [1000 + i for i in range(9)]
        assert sorted(merged.payloads.tolist()) == sorted(expect)

    def test_empty_streams(self):
        merger = StreamingMerger(8)
        merged, stats = merger.merge(make([]), make([]))
        assert len(merged) == 0 and stats.cycles == 0
        merged, stats = merger.merge(make([1, 2, 3]), make([]))
        assert merged.keys.tolist() == [1, 2, 3]

    def test_unsorted_input_rejected(self):
        with pytest.raises(ValueError):
            StreamingMerger(8).merge(make([2, 1]), make([]))

    def test_width_validation(self):
        with pytest.raises(ValueError):
            StreamingMerger(6)

    def test_cycle_formula_is_window_count(self):
        # ceil(20/4) + ceil(9/4) windows of half=4 for width 8.
        assert streaming_merge_cycles(20, 9, 8) == 5 + 3
        assert streaming_merge_cycles(0, 0, 8) == 0


class TestMPUSort:
    @pytest.mark.parametrize("width", [8, 64])
    def test_sort_arbitrary_lengths(self, width, rng):
        for n in (1, 3, 7, 33, 150):
            keys = rng.integers(0, 500, size=n)
            out, stats = mpu_sort(ComparatorArray.from_keys(keys), width)
            assert np.array_equal(out.keys, np.sort(keys))
            assert stats.cycles == sort_cycles(n, width)

    def test_sort_empty(self):
        out, stats = mpu_sort(ComparatorArray.from_keys(np.array([])), 8)
        assert len(out) == 0 and stats.cycles == 0

    def test_cycles_scale_n_log_chunks(self):
        """The merge tree streams all P elements once per level."""
        c_small = sort_cycles(1000, 64)
        c_double = sort_cycles(2000, 64)
        assert c_small * 2 <= c_double <= c_small * 2.6


class TestMPUTopK:
    @pytest.mark.parametrize("width", [8, 64])
    def test_topk_matches_sorted_prefix(self, width, rng):
        for n, k in ((50, 5), (100, 16), (9, 20), (257, 1)):
            keys = rng.integers(0, 10_000, size=n)
            out, stats = mpu_topk(ComparatorArray.from_keys(keys), k, width)
            assert np.array_equal(out.keys, np.sort(keys)[: min(k, n)])
            assert stats.cycles == topk_cycles(n, k, width)

    def test_topk_cheaper_than_sort(self):
        n, width = 8192, 64
        assert topk_cycles(n, 16, width) < sort_cycles(n, width)

    def test_truncation_saves_more_for_smaller_k(self):
        n, width = 8192, 64
        assert topk_cycles(n, 16, width) <= topk_cycles(n, 64, width)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            mpu_topk(ComparatorArray.from_keys(np.array([1])), 0, 8)


class TestQuickSelectComparison:
    def test_typical_point_cloud_case_favors_mpu(self):
        """Section 4.1.4: k tiny vs n -> merge-tree TopK beats quick-select
        (averaged over pivot randomness)."""
        n, k, width = 8192, 32, 64
        mpu = topk_cycles(n, k, width)
        qs = np.mean([
            quickselect_topk_cycles(n, k, lanes=width // 2, seed=s)
            for s in range(50)
        ])
        assert qs / mpu > 1.0

    def test_quickselect_terminates(self):
        cycles = quickselect_topk_cycles(10_000, 8, lanes=32, seed=0)
        assert 0 < cycles < 10_000
