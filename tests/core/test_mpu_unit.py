"""Tests for the intersection detector and the full Mapping Unit."""

import numpy as np
import pytest

from repro.core.config import POINTACC_EDGE, POINTACC_FULL
from repro.core.mpu import MappingUnit, detect_intersections, detector_stages
from repro.mapping import (
    ball_query_maps,
    farthest_point_sampling,
    kernel_map_hash,
    knn_maps,
)
from repro.pointcloud.coords import quantize_unique


class TestIntersectionDetector:
    def test_finds_adjacent_equal_pairs(self):
        keys = np.array([1, 2, 2, 3, 5, 5, 9])
        payloads = np.array([10, 20, 21, 30, 50, 51, 90])
        from_output = np.array([False, True, False, False, False, True, True])
        ins, outs, stats = detect_intersections(keys, payloads, from_output, 8)
        assert stats.pairs == 2
        assert ins.tolist() == [21, 50]
        assert outs.tolist() == [20, 51]

    def test_no_intersections(self):
        keys = np.array([1, 2, 3])
        ins, outs, stats = detect_intersections(
            keys, keys, np.array([True, False, True]), 8
        )
        assert len(ins) == 0 and stats.pairs == 0

    def test_same_side_duplicates_rejected(self):
        keys = np.array([2, 2])
        with pytest.raises(ValueError):
            detect_intersections(
                keys, keys, np.array([True, True]), 8
            )

    def test_cycle_count_streams_width_blocks(self):
        keys = np.arange(100)
        _, _, stats = detect_intersections(
            keys, keys, np.zeros(100, dtype=bool), 8
        )
        assert stats.cycles == -(-100 // 8)

    def test_detector_stages_log(self):
        assert detector_stages(64) == 6
        with pytest.raises(ValueError):
            detector_stages(5)


@pytest.fixture
def mpu():
    return MappingUnit(POINTACC_FULL)


class TestMappingUnitFunctional:
    """The MPU's functional outputs equal the reference algorithms."""

    def test_kernel_map_matches_hash(self, mpu, voxel_tensor):
        down = voxel_tensor.downsample(2)
        maps, stats = mpu.kernel_map(
            voxel_tensor.coords, down.coords, 2, voxel_tensor.tensor_stride
        )
        ref = kernel_map_hash(
            voxel_tensor.coords, down.coords, 2, voxel_tensor.tensor_stride
        )
        assert maps.as_set() == ref.as_set()
        assert stats.cycles > 0
        assert stats.dram_write_bytes > 0

    def test_fps_matches_reference(self, mpu, object_cloud):
        idx, stats = mpu.fps(object_cloud.points, 32)
        ref = farthest_point_sampling(object_cloud.points, 32)
        assert np.array_equal(idx, ref)
        assert stats.distance_ops == 32 * object_cloud.n

    def test_knn_matches_reference(self, mpu, object_cloud):
        queries = object_cloud.points[:16]
        maps, stats = mpu.knn(queries, object_cloud.points, 8)
        ref = knn_maps(queries, object_cloud.points, 8)
        assert maps.as_set() == ref.as_set()
        assert stats.cycles > 0

    def test_ball_query_matches_reference(self, mpu, object_cloud):
        queries = object_cloud.points[:16]
        maps, _ = mpu.ball_query(queries, object_cloud.points, 0.4, 8)
        ref = ball_query_maps(queries, object_cloud.points, 0.4, 8)
        assert maps.as_set() == ref.as_set()

    def test_quantize_matches_reference(self, mpu, voxel_tensor):
        out, inverse, stats = mpu.quantize(voxel_tensor.coords, 4)
        ref_out, ref_inv = quantize_unique(voxel_tensor.coords, 4)
        assert np.array_equal(out, ref_out)
        assert np.array_equal(inverse, ref_inv)
        assert stats.cycles == -(-voxel_tensor.n // mpu.width)


class TestMappingUnitCosts:
    def test_kernel_map_cycles_scale_with_kernel_volume(self, voxel_tensor):
        mpu = MappingUnit(POINTACC_FULL)
        down = voxel_tensor.downsample(2)
        _, k2 = mpu.kernel_map(voxel_tensor.coords, down.coords, 2, 1)
        _, k3 = mpu.kernel_map(voxel_tensor.coords, voxel_tensor.coords, 3, 1)
        # 27 offsets vs 8 offsets over comparable stream lengths.
        assert k3.cycles > k2.cycles

    def test_edge_config_slower(self, voxel_tensor):
        full = MappingUnit(POINTACC_FULL)
        edge = MappingUnit(POINTACC_EDGE)
        down = voxel_tensor.downsample(2)
        _, f = full.kernel_map(voxel_tensor.coords, down.coords, 2, 1)
        _, e = edge.kernel_map(voxel_tensor.coords, down.coords, 2, 1)
        assert e.cycles > f.cycles  # narrower merger

    def test_fps_spill_increases_dram(self):
        """Clouds beyond the sorter buffer re-stream from DRAM per iteration."""
        mpu = MappingUnit(POINTACC_EDGE)
        rng = np.random.default_rng(0)
        small = rng.random((500, 3))
        big = rng.random((6000, 3))
        _, s_small = mpu.fps(small, 8)
        _, s_big = mpu.fps(big, 8)
        per_point_small = s_small.dram_read_bytes / 500
        per_point_big = s_big.dram_read_bytes / 6000
        assert per_point_big > per_point_small

    def test_feature_space_knn_costs_more(self, object_cloud):
        mpu = MappingUnit(POINTACC_FULL)
        q = object_cloud.points[:8]
        _, d3 = mpu.knn(q, object_cloud.points, 4, distance_dim=3)
        _, d64 = mpu.knn(q, object_cloud.points, 4, distance_dim=64)
        assert d64.cycles > d3.cycles

    def test_hash_alternative_cycles_positive(self):
        mpu = MappingUnit(POINTACC_FULL)
        assert mpu.hash_kernel_map_cycles(1000, 500, 27) > 0
