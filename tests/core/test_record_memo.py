"""The per-layer content-keyed cost-record memo of PointAccModel.

Near-identical frames re-served by an engine should share cost-model
records per layer, not just kernel maps — but a memo may only ever change
wall-clock, never a report.  These tests pin the content-keying (map
tables by digest), the copy-out isolation (static leakage is folded into
a report's last record after the fact), and the bit-identity of memoized
reports against fresh models.
"""

import numpy as np
import pytest

from repro.core import POINTACC_FULL, PointAccModel
from repro.core.accelerator import _map_digest, _params_key, _spec_key
from repro.mapping.maps import MapTable
from repro.nn.models.registry import build_trace
from repro.nn.trace import LayerKind, LayerSpec


@pytest.fixture(scope="module")
def trace():
    return build_trace("MinkNet(o)", scale=0.1, seed=0)


class TestMemoBitIdentity:
    def test_replay_equals_fresh_model(self, trace):
        warm = PointAccModel(POINTACC_FULL)
        first = warm.run(trace)
        second = warm.run(trace)
        assert warm.record_memo_stats["hits"] > 0
        cold = PointAccModel(POINTACC_FULL).run(trace)
        assert first == cold
        assert second == cold

    def test_memo_disabled_still_equal(self, trace):
        off = PointAccModel(POINTACC_FULL, record_memo_entries=0)
        assert off.run(trace) == PointAccModel(POINTACC_FULL).run(trace)
        assert off.record_memo_stats["hits"] == 0

    def test_flow_is_part_of_the_key(self, trace):
        model = PointAccModel(POINTACC_FULL)
        fetch = model.run(trace, flow="fetch_on_demand")
        gather = model.run(trace, flow="gather_scatter")
        assert fetch != gather  # a shared key here would alias the flows
        assert gather == PointAccModel(POINTACC_FULL).run(
            trace, flow="gather_scatter"
        )

    def test_mutating_a_report_does_not_poison_the_memo(self, trace):
        model = PointAccModel(POINTACC_FULL)
        reference = PointAccModel(POINTACC_FULL).run(trace)
        first = model.run(trace)
        first.records[0].seconds = -1.0
        first.records[0].energy.compute_pj = -1.0
        assert model.run(trace) == reference


class TestContentKeys:
    def test_map_digest_is_content_not_identity(self):
        table = MapTable(np.arange(5), np.arange(5), np.zeros(5), 27)
        clone = MapTable(np.arange(5), np.arange(5), np.zeros(5), 27)
        other = MapTable(np.arange(5), np.arange(5), np.ones(5), 27)
        assert _map_digest(table) == _map_digest(clone)
        assert _map_digest(table) != _map_digest(other)
        # memoized on the instance, excluded from pickles
        assert table._content_digest is not None
        assert "_content_digest" not in table.__getstate__()

    def test_unknown_param_type_is_uncacheable(self):
        assert _params_key({"weird": object()}) is None
        spec = LayerSpec(name="x", kind=LayerKind.ELEMWISE, n_in=4, n_out=4,
                         rows=4, params={"weird": object()})
        assert _spec_key(spec) is None

    def test_spec_key_separates_distinct_layers(self):
        a = LayerSpec(name="conv1", kind=LayerKind.DENSE_MM, n_in=8, n_out=8,
                      c_in=3, c_out=16, rows=8)
        b = LayerSpec(name="conv1", kind=LayerKind.DENSE_MM, n_in=8, n_out=8,
                      c_in=3, c_out=32, rows=8)
        assert _spec_key(a) != _spec_key(b)
        assert _spec_key(a) == _spec_key(
            LayerSpec(name="conv1", kind=LayerKind.DENSE_MM, n_in=8, n_out=8,
                      c_in=3, c_out=16, rows=8)
        )

    def test_memo_is_bounded(self, trace):
        model = PointAccModel(POINTACC_FULL, record_memo_entries=4)
        model.run(trace)
        assert len(model._record_memo) <= 4
        # Still exact under heavy eviction.
        assert model.run(trace) == PointAccModel(POINTACC_FULL).run(trace)
