"""Tests for the top-level PointAcc model and PerfReport."""

import pytest

from repro.core import (
    CATEGORIES,
    LayerRecord,
    PerfReport,
    PointAccModel,
    POINTACC_EDGE,
    POINTACC_FULL,
)
from repro.core.energy import EnergyLedger
from repro.nn.models import build_trace
from repro.nn.trace import LayerKind

SCALE = 0.08


@pytest.fixture(scope="module")
def pn_trace():
    return build_trace("PointNet++(c)", scale=SCALE, seed=2)


@pytest.fixture(scope="module")
def mink_trace():
    return build_trace("MinkNet(o)", scale=SCALE, seed=2)


@pytest.fixture(scope="module")
def model():
    return PointAccModel(POINTACC_FULL)


class TestPerfReport:
    def test_category_validation(self):
        rep = PerfReport("p", "n")
        with pytest.raises(ValueError):
            rep.add(LayerRecord(
                name="x", kind="k", seconds=1.0,
                category_seconds={"bogus": 1.0},
            ))

    def test_totals_and_fps(self):
        rep = PerfReport("p", "n")
        rep.add(LayerRecord(name="a", kind="k", seconds=0.25,
                            category_seconds={"matmul": 0.25}, macs=10))
        rep.add(LayerRecord(name="b", kind="k", seconds=0.25,
                            category_seconds={"mapping": 0.25}))
        assert rep.total_seconds == 0.5
        assert rep.fps() == 2.0
        assert rep.total_macs == 10
        frac = rep.latency_fractions()
        assert frac["matmul"] == frac["mapping"] == 0.5

    def test_energy_aggregation(self):
        rep = PerfReport("p", "n")
        rep.add(LayerRecord(name="a", kind="k", seconds=1.0,
                            category_seconds={"other": 1.0},
                            energy=EnergyLedger(compute_pj=100)))
        assert rep.energy.compute_pj == 100

    def test_summary_fields(self, model, pn_trace):
        s = model.run(pn_trace).summary()
        for key in ("latency_ms", "energy_mj", "dram_mb", "macs_g", "breakdown"):
            assert key in s


class TestPointAccModel:
    def test_runs_every_benchmark_kind(self, model, pn_trace, mink_trace):
        for trace in (pn_trace, mink_trace):
            rep = model.run(trace)
            assert rep.total_seconds > 0
            assert rep.energy_joules > 0

    def test_movement_specs_absorbed(self, model, pn_trace):
        rep = model.run(pn_trace)
        kinds = {r.kind for r in rep.records}
        assert "gather" not in kinds and "scatter" not in kinds

    def test_macs_conserved(self, model, mink_trace):
        rep = model.run(mink_trace)
        assert rep.total_macs == mink_trace.total_macs

    def test_fusion_reduces_dram_not_macs(self, model, pn_trace):
        fused = model.run(pn_trace, fusion=True)
        unfused = model.run(pn_trace, fusion=False)
        assert fused.dram_bytes < unfused.dram_bytes
        assert fused.total_macs == unfused.total_macs

    def test_fetch_on_demand_beats_gather_scatter(self, model, mink_trace):
        fod = model.run(mink_trace, flow="fetch_on_demand")
        gs = model.run(mink_trace, flow="gather_scatter")
        assert fod.dram_bytes < gs.dram_bytes
        assert fod.total_seconds <= gs.total_seconds

    def test_unknown_flow_rejected(self, model, mink_trace):
        with pytest.raises(ValueError):
            model.run(mink_trace, flow="teleport")

    def test_edge_slower_than_full(self, pn_trace):
        full = PointAccModel(POINTACC_FULL).run(pn_trace)
        edge = PointAccModel(POINTACC_EDGE).run(pn_trace)
        assert edge.total_seconds > full.total_seconds

    def test_matmul_dominates_minknet(self, model, mink_trace):
        """Fig. 21a: with mapping on-chip and movement overlapped, MatMul
        dominates PointAcc latency."""
        frac = model.run(mink_trace).latency_fractions()
        assert frac["matmul"] > 0.5
        assert frac["matmul"] > frac["mapping"]

    def test_cached_kernel_maps_cost_less(self, model, mink_trace):
        recs = {
            r.name: r for r in model.run(mink_trace).records
            if r.kind == "map_kernel"
        }
        cached = [r for r in recs.values() if "block0.conv2" in r.name]
        uncached = [r for r in recs.values() if "stem1" in r.name]
        assert cached and uncached
        assert cached[0].cycles < uncached[0].cycles

    def test_energy_pie_fields(self, model, mink_trace):
        pie = model.run(mink_trace).energy.breakdown()
        assert set(pie) == {"compute", "sram", "dram"}
        assert sum(pie.values()) == pytest.approx(1.0)

    def test_per_layer_detail_exposes_cache_tuning(self, model, mink_trace):
        rep = model.run(mink_trace)
        conv_records = [r for r in rep.records if r.kind == "sparse_conv"]
        assert conv_records
        assert all("block_points" in r.detail for r in conv_records)
