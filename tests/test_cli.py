"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "PointNet"])
        assert args.machine == "pointacc"
        assert args.scale == 0.25

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "AlexNet"])

    def test_stream_defaults(self):
        args = build_parser().parse_args(["serve-stream"])
        assert args.benchmark == "MinkNet(o)"
        assert args.shards == 0 and not args.no_tiles
        assert args.min_tile_points == 0 and not args.no_batch

    def test_fleet_tile_front_knobs(self):
        args = build_parser().parse_args(
            ["serve-fleet", "--min-tile-points", "32", "--no-batch"]
        )
        assert args.min_tile_points == 32 and args.no_batch

    def test_bench_stream_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench-stream", "--benchmark", "VGG"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "PointNet++(c)" in out
        assert "fig13" in out
        assert "RTX 2080Ti" in out

    def test_run_pointacc(self, capsys):
        assert main(["run", "PointNet++(c)", "--scale", "0.08"]) == 0
        out = capsys.readouterr().out
        assert "latency" in out and "PointAcc" in out

    def test_run_with_layers(self, capsys):
        assert main(["run", "PointNet", "--scale", "0.08", "--layers"]) == 0
        out = capsys.readouterr().out
        assert "per-layer records" in out

    def test_run_on_platform(self, capsys):
        code = main(["run", "PointNet", "--machine", "Jetson Nano",
                     "--scale", "0.08"])
        assert code == 0
        assert "Jetson Nano" in capsys.readouterr().out

    def test_run_mesorasi_rejects_sparseconv(self, capsys):
        code = main(["run", "MinkNet(i)", "--machine", "mesorasi",
                     "--scale", "0.06"])
        assert code == 2
        assert "delayed aggregation" in capsys.readouterr().err

    def test_experiment(self, capsys):
        assert main(["experiment", "tab03"]) == 0
        assert "PointAcc" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_compare(self, capsys):
        assert main(["compare", "PointNet", "--scale", "0.08"]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out

    def test_inspect(self, capsys):
        assert main(["inspect", "PointNet++(c)", "--scale", "0.08"]) == 0
        out = capsys.readouterr().out
        assert "GMACs" in out and "map_fps" in out

    def test_serve_sim(self, capsys):
        code = main(["serve-sim", "--requests", "6", "--scale", "0.1",
                     "--seed-pool", "2", "--benchmarks", "PointNet++(c)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 6 requests" in out
        assert "reuse" in out  # seed pool < requests => trace reuse happened

    def test_serve_sim_unknown_benchmark(self, capsys):
        assert main(["serve-sim", "--benchmarks", "AlexNet"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_bench_engine(self, capsys):
        code = main(["bench-engine", "--benchmarks", "PointNet++(c)",
                     "--repeats", "2", "--seeds", "1", "--scale", "0.1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "bit-identical: yes" in out

    def test_serve_cluster(self, capsys):
        code = main(["serve-cluster", "--requests", "6", "--scale", "0.1",
                     "--seed-pool", "2", "--benchmarks", "PointNet++(c)",
                     "--shards", "2", "--tenant-pool", "2",
                     "--deadline-ms", "1e9"])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 6/6 requests" in out
        assert "deadlines: 6 met, 0 missed" in out
        assert "tenant tenantA" in out and "tenant tenantB" in out
        assert "L2 store" in out

    def test_serve_cluster_persists_and_warm_starts(self, tmp_path, capsys):
        cache_dir = tmp_path / "maps"
        argv = ["serve-cluster", "--requests", "2", "--scale", "0.1",
                "--seed-pool", "1", "--benchmarks", "PointNet++(c)",
                "--shards", "1", "--cache-dir", str(cache_dir)]
        assert main(list(argv)) == 0
        capsys.readouterr()
        assert any(cache_dir.glob("*.map"))
        assert main(list(argv)) == 0
        out = capsys.readouterr().out
        assert "first-request map hits: 0" not in out  # warm-started

    def test_serve_cluster_request_file(self, tmp_path, capsys):
        path = tmp_path / "reqs.jsonl"
        path.write_text(
            '{"benchmark": "PointNet++(c)", "scale": 0.1, "tenant": "acme"}\n'
            '{"benchmark": "PointNet++(c)", "scale": 0.1, "deadline_ms": 0}\n'
        )
        code = main(["serve-cluster", "--request-file", str(path),
                     "--shards", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 1/2 requests (1 rejected)" in out
        assert "rejected" in out

    def test_bench_cluster(self, capsys):
        code = main(["bench-cluster", "--benchmarks", "PointNet++(c)",
                     "--repeats", "2", "--seeds", "1", "--scale", "0.1",
                     "--shards", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "bit-identical: yes" in out
        assert "warm cluster" in out

    def test_serve_sim_reports_per_op_breakdown(self, capsys):
        assert main(["serve-sim", "--requests", "4", "--scale", "0.1",
                     "--benchmarks", "PointNet++(c)"]) == 0
        out = capsys.readouterr().out
        assert "map cache by op" in out
        assert "fps" in out and "ball_query" in out

    def test_serve_cluster_reports_per_op_breakdown(self, capsys):
        assert main(["serve-cluster", "--requests", "4", "--scale", "0.1",
                     "--benchmarks", "PointNet++(c)", "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "map lookups by op" in out
        assert "fps" in out

    def test_serve_stream(self, capsys):
        code = main(["serve-stream", "--frames", "3", "--scale", "0.12",
                     "--benchmark", "MinkNet(o)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 3/3 frames" in out
        assert "tile cache:" in out
        assert "tile reuse by op" in out
        assert "geometry-only: yes" in out

    def test_serve_stream_density_bypass(self, capsys):
        """The density-floor knob wires through: a floor high enough that
        every call bypasses decomposition still serves every frame."""
        code = main(["serve-stream", "--frames", "2", "--scale", "0.12",
                     "--benchmark", "MinkNet(o)",
                     "--min-tile-points", "100000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 2/2 frames" in out

    def test_no_batch_is_a_clear_error(self, capsys):
        """--no-batch parses (so old scripts fail loudly, not with an
        argparse usage dump) but serving with it is a removal error."""
        code = main(["serve-stream", "--frames", "1", "--no-batch"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--no-batch was removed" in err
        assert "PerTileOracle" in err

    def test_serve_stream_cluster_with_deadlines(self, capsys):
        code = main(["serve-stream", "--frames", "2", "--scale", "0.1",
                     "--benchmark", "PointNet++(c)", "--shards", "2",
                     "--deadline-ms", "1e9"])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 2/2 frames" in out
        assert "met" in out

    def test_bench_stream_with_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "BENCH_stream.json"
        code = main(["bench-stream", "--frames", "2", "--scale", "0.12",
                     "--json", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "bit-identical: yes" in out
        payload = json.loads(path.read_text())
        assert payload["command"] == "bench-stream"
        assert payload["mismatches"] == 0
        assert payload["speedup"] > 0
        assert "tiles" in payload

    def test_serve_stream_with_trace_and_metrics(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main(["serve-stream", "--frames", "2", "--scale", "0.12",
                     "--trace", str(trace), "--metrics", str(metrics)])
        assert code == 0
        out = capsys.readouterr().out
        assert f"wrote {trace}" in out
        roots = [json.loads(line) for line in
                 trace.read_text().strip().splitlines()]
        assert [r["name"] for r in roots] == ["frame", "frame"]
        names = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            names.add(node["name"])
            stack.extend(node.get("children", ()))
        assert {"frame", "request", "plan", "probe", "execute"} <= names
        snapshot = json.loads(metrics.read_text())
        assert snapshot["histograms"]["span_ms.frame"]["count"] == 2
        assert snapshot["counters"]["spans.frame"] == 2
        # The flight-recorder sidecar retains the same frames.
        flight = tmp_path / "trace.flight.jsonl"
        assert flight.exists()
        records = [json.loads(line) for line in
                   flight.read_text().strip().splitlines()]
        assert all(r["kind"] == "slow" for r in records)

    def test_trace_report_renders_phases_and_slow_frames(self, tmp_path,
                                                         capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["serve-stream", "--frames", "2", "--scale", "0.12",
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace-report", str(trace), "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "self ms" in out
        assert "top 1 slow frame(s):" in out
        assert "frame(index=" in out

    def test_trace_report_missing_file_exits_2(self, capsys):
        assert main(["trace-report", "/nonexistent/trace.jsonl"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_report_empty_file_exits_0(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace-report", str(empty)]) == 0
        assert "empty (no spans)" in capsys.readouterr().out

    def test_trace_report_skips_malformed_lines(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["serve-stream", "--frames", "2", "--scale", "0.12",
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        dirty = tmp_path / "dirty.jsonl"
        dirty.write_text("garbage {\n" + trace.read_text() + "[]\n")
        assert main(["trace-report", str(dirty)]) == 0
        out = capsys.readouterr().out
        assert "warning: skipped 2 malformed line(s)" in out
        assert "phase" in out  # the good lines still produce the report

    def test_trace_report_joins_ledger_file(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        ledger = tmp_path / "ledger.jsonl"
        assert main(["serve-stream", "--frames", "2", "--scale", "0.12",
                     "--trace", str(trace), "--ledger", str(ledger)]) == 0
        capsys.readouterr()
        assert main(["trace-report", str(trace),
                     "--ledger-file", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "top recompute causes:" in out
        assert "recompute(cold)" in out
        assert "recomputed tiles:" in out  # the per-slow-frame join
        # Compose outcomes surface alongside the recompute taxonomy —
        # the voxelize merge family included (MinkNet voxelizes every
        # frame, so at least one voxelize compose event is recorded).
        assert "compose outcomes:" in out
        assert "voxelize:" in out

    def test_trace_diff_cli_self_diff(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["serve-stream", "--frames", "2", "--scale", "0.12",
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        out_json = tmp_path / "diff.json"
        assert main(["trace-diff", str(trace), str(trace),
                     "--json", str(out_json)]) == 0
        out = capsys.readouterr().out
        assert "verdict: no self-time delta" in out
        assert json.loads(out_json.read_text())["total_delta_ms"] == 0.0

    def test_trace_diff_missing_file_exits_2(self, capsys):
        assert main(["trace-diff", "/nonexistent/a.jsonl",
                     "/nonexistent/b.jsonl"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_fleet(self, capsys):
        code = main(["serve-fleet", "--streams", "2", "--frames", "2",
                     "--scale", "0.12", "--shards", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 4/4 frames from 2 streams" in out
        assert "cross-stream hits" in out
        assert "tile reuse by op" in out

    def test_serve_fleet_disjoint(self, capsys):
        code = main(["serve-fleet", "--streams", "2", "--frames", "2",
                     "--scale", "0.1", "--disjoint", "--shards", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert " 0 cross-stream hits" in out  # leading space: exactly zero

    def test_bench_fleet_with_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "BENCH_fleet.json"
        code = main(["bench-fleet", "--streams", "2", "--frames", "2",
                     "--scale", "0.12", "--shards", "1",
                     "--json", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "bit-identical: yes" in out
        payload = json.loads(path.read_text())
        assert payload["command"] == "bench-fleet"
        assert payload["schema"] == 1
        assert payload["mismatches"] == 0
        assert payload["world_tiles"]["cross_hits"] > 0

    def test_bench_json_payloads_carry_schema_version(self, tmp_path,
                                                      capsys):
        """Satellite contract: every bench --json payload is versioned."""
        import json

        path = tmp_path / "BENCH_engine.json"
        code = main(["bench-engine", "--benchmarks", "PointNet++(c)",
                     "--repeats", "1", "--seeds", "1", "--scale", "0.1",
                     "--json", str(path)])
        assert code == 0
        capsys.readouterr()
        assert json.loads(path.read_text())["schema"] == 1

    def test_bench_engine_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "BENCH_engine.json"
        code = main(["bench-engine", "--benchmarks", "PointNet++(c)",
                     "--repeats", "2", "--seeds", "1", "--scale", "0.1",
                     "--json", str(path)])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["command"] == "bench-engine"
        assert payload["mismatches"] == 0
        assert "by_op" in payload["map_cache"]

    def test_bench_cluster_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "BENCH_cluster.json"
        code = main(["bench-cluster", "--benchmarks", "PointNet++(c)",
                     "--repeats", "2", "--seeds", "1", "--scale", "0.1",
                     "--shards", "2", "--json", str(path)])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["command"] == "bench-cluster"
        assert payload["speedup"] > 0
        assert len(payload["shard_requests"]) == 2


class TestErrorPaths:
    """Unknown backends/benchmarks and malformed request files must exit 2
    with a stderr message naming the problem — never a traceback."""

    def test_run_unknown_machine(self, capsys):
        assert main(["run", "PointNet", "--machine", "TPUv9",
                     "--scale", "0.08"]) == 2
        err = capsys.readouterr().err
        assert "unknown machine" in err and "TPUv9" in err

    @pytest.mark.parametrize("command", ["serve-sim", "serve-cluster"])
    def test_unknown_backend(self, command, capsys):
        assert main([command, "--backends", "abacus", "--requests", "1"]) == 2
        assert "unknown backend" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["serve-sim", "serve-cluster",
                                         "bench-engine", "bench-cluster"])
    def test_unknown_benchmark(self, command, capsys):
        assert main([command, "--benchmarks", "AlexNet"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    @pytest.mark.parametrize("payload,fragment", [
        ("{broken json", "malformed JSON"),
        ('{"scale": 0.5}', "benchmark"),
        ('{"benchmark": "PointNet", "turbo": 1}', "unknown request field"),
        ('{"benchmark": "PointNet", "scale": true}', "field 'scale' has type"),
        ("", "no requests"),
    ])
    @pytest.mark.parametrize("command", ["serve-sim", "serve-cluster"])
    def test_malformed_request_file(self, command, payload, fragment,
                                    tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text(payload + "\n")
        assert main([command, "--request-file", str(path)]) == 2
        err = capsys.readouterr().err
        assert fragment in err and err.startswith("error:")

    @pytest.mark.parametrize("command", ["serve-sim", "serve-cluster"])
    def test_missing_request_file(self, command, tmp_path, capsys):
        code = main([command, "--request-file",
                     str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert "cannot read request file" in capsys.readouterr().err

    def test_bad_shard_and_window_counts(self, capsys):
        assert main(["serve-cluster", "--shards", "0", "--requests", "1"]) == 2
        assert "--shards" in capsys.readouterr().err
        assert main(["serve-cluster", "--window", "0", "--requests", "1"]) == 2
        assert "--window" in capsys.readouterr().err
