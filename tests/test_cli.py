"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "PointNet"])
        assert args.machine == "pointacc"
        assert args.scale == 0.25

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "AlexNet"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "PointNet++(c)" in out
        assert "fig13" in out
        assert "RTX 2080Ti" in out

    def test_run_pointacc(self, capsys):
        assert main(["run", "PointNet++(c)", "--scale", "0.08"]) == 0
        out = capsys.readouterr().out
        assert "latency" in out and "PointAcc" in out

    def test_run_with_layers(self, capsys):
        assert main(["run", "PointNet", "--scale", "0.08", "--layers"]) == 0
        out = capsys.readouterr().out
        assert "per-layer records" in out

    def test_run_on_platform(self, capsys):
        code = main(["run", "PointNet", "--machine", "Jetson Nano",
                     "--scale", "0.08"])
        assert code == 0
        assert "Jetson Nano" in capsys.readouterr().out

    def test_run_mesorasi_rejects_sparseconv(self, capsys):
        code = main(["run", "MinkNet(i)", "--machine", "mesorasi",
                     "--scale", "0.06"])
        assert code == 2
        assert "delayed aggregation" in capsys.readouterr().err

    def test_experiment(self, capsys):
        assert main(["experiment", "tab03"]) == 0
        assert "PointAcc" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_compare(self, capsys):
        assert main(["compare", "PointNet", "--scale", "0.08"]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out

    def test_inspect(self, capsys):
        assert main(["inspect", "PointNet++(c)", "--scale", "0.08"]) == 0
        out = capsys.readouterr().out
        assert "GMACs" in out and "map_fps" in out

    def test_serve_sim(self, capsys):
        code = main(["serve-sim", "--requests", "6", "--scale", "0.1",
                     "--seed-pool", "2", "--benchmarks", "PointNet++(c)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 6 requests" in out
        assert "reuse" in out  # seed pool < requests => trace reuse happened

    def test_serve_sim_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["serve-sim", "--benchmarks", "AlexNet"])

    def test_bench_engine(self, capsys):
        code = main(["bench-engine", "--benchmarks", "PointNet++(c)",
                     "--repeats", "2", "--seeds", "1", "--scale", "0.1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "bit-identical: yes" in out
