"""Tests for the baseline platform models."""

import pytest

from repro.baselines import (
    EDGE_PLATFORMS,
    SERVER_PLATFORMS,
    PlatformModel,
    PlatformSpec,
    get_platform,
)
from repro.nn.models import build_trace
from repro.nn.trace import LayerKind, LayerSpec, Trace

SCALE = 0.08


@pytest.fixture(scope="module")
def pn_trace():
    return build_trace("PointNet++(c)", scale=SCALE, seed=2)


@pytest.fixture(scope="module")
def mink_trace():
    return build_trace("MinkNet(o)", scale=SCALE, seed=2)


class TestRegistry:
    def test_all_platforms_resolvable(self):
        for spec in (*SERVER_PLATFORMS, *EDGE_PLATFORMS):
            model = get_platform(spec.name)
            assert isinstance(model, PlatformModel)

    def test_unknown_platform(self):
        with pytest.raises(KeyError):
            get_platform("Cerebras")


class TestExecution:
    @pytest.mark.parametrize(
        "name", [s.name for s in (*SERVER_PLATFORMS, *EDGE_PLATFORMS)]
    )
    def test_runs_both_families(self, name, pn_trace, mink_trace):
        model = get_platform(name)
        for trace in (pn_trace, mink_trace):
            rep = model.run(trace)
            assert rep.total_seconds > 0
            assert rep.energy_joules > 0
            assert rep.platform == name

    def test_movement_costed_on_baselines(self, mink_trace):
        """Unlike PointAcc, commodity platforms pay for explicit
        gather/scatter (paper Fig. 4)."""
        rep = get_platform("RTX 2080Ti").run(mink_trace)
        assert rep.latency_breakdown()["movement"] > 0

    def test_ordering_gpu_fastest_rpi_slowest(self, mink_trace):
        gpu = get_platform("RTX 2080Ti").run(mink_trace).total_seconds
        cpu = get_platform("Xeon Gold 6130").run(mink_trace).total_seconds
        rpi = get_platform("Raspberry Pi 4B").run(mink_trace).total_seconds
        assert gpu < cpu < rpi

    def test_edge_ordering(self, pn_trace):
        nx = get_platform("Jetson Xavier NX").run(pn_trace).total_seconds
        nano = get_platform("Jetson Nano").run(pn_trace).total_seconds
        rpi = get_platform("Raspberry Pi 4B").run(pn_trace).total_seconds
        assert nx < nano < rpi

    def test_mapping_dominates_pointnetpp_on_gpu(self):
        """Fig. 6: PointNet++-family networks spend >50% in mapping +
        movement on general-purpose hardware.  FPS serialization grows
        with the sample count, so this needs a realistic input size."""
        trace = build_trace("PointNet++(c)", scale=0.5, seed=2)
        frac = get_platform("RTX 2080Ti").run(trace).latency_fractions()
        assert frac["mapping"] + frac["movement"] > 0.5

    def test_tpu_offload_dominated_by_movement(self, mink_trace):
        """Fig. 6: the CPU+TPU round trip eats 60-90% of runtime."""
        frac = get_platform("Xeon Skylake + TPU V3").run(
            mink_trace
        ).latency_fractions()
        assert frac["movement"] > 0.5

    def test_cached_maps_cost_only_dispatch(self, mink_trace):
        rep = get_platform("RTX 2080Ti").run(mink_trace)
        kmaps = [r for r in rep.records if r.kind == "map_kernel"]
        cached = [r for r in kmaps if r.seconds <= 10e-6]
        assert cached, "map reuse should reduce some layers to dispatch cost"


class TestFPSSerialization:
    def test_fps_latency_floor_from_sync(self):
        spec = PlatformSpec(
            name="toy", peak_gflops=1000, mem_bw_gbps=100,
            dense_efficiency=0.5, sparse_efficiency=0.1,
            mapping_gops=1000.0,  # compute cost ~0
            gather_gbps=50, fps_sync_us=10.0, op_overhead_us=0.0,
        )
        trace = Trace()
        trace.record(LayerSpec(name="fps", kind=LayerKind.MAP_FPS,
                               n_in=1000, n_out=100, rows=1000))
        rep = PlatformModel(spec).run(trace)
        assert rep.total_seconds >= 100 * 10e-6  # n_out x sync

    def test_no_sync_on_cpu_style_platform(self):
        spec = PlatformSpec(
            name="toy-cpu", peak_gflops=100, mem_bw_gbps=50,
            dense_efficiency=0.5, sparse_efficiency=0.1,
            mapping_gops=1.0, gather_gbps=10, fps_sync_us=0.0,
            op_overhead_us=0.0,
        )
        trace = Trace()
        trace.record(LayerSpec(name="fps", kind=LayerKind.MAP_FPS,
                               n_in=1000, n_out=100, rows=1000))
        rep = PlatformModel(spec).run(trace)
        expected = 3.0 * 1000 * 100 / 1e9
        assert rep.total_seconds == pytest.approx(expected, rel=0.01)


class TestRooflineBehaviour:
    def _trace_with_dense(self, rows, c):
        trace = Trace()
        trace.record(LayerSpec(name="d", kind=LayerKind.DENSE_MM, n_in=rows,
                               n_out=rows, c_in=c, c_out=c, rows=rows))
        return trace

    def test_compute_bound_scales_with_flops(self):
        model = get_platform("RTX 2080Ti")
        small = model.run(self._trace_with_dense(10_000, 256)).total_seconds
        big = model.run(self._trace_with_dense(20_000, 256)).total_seconds
        assert big == pytest.approx(2 * small, rel=0.2)

    def test_memory_bound_small_channels(self):
        """Narrow layers hit the bandwidth roof, not the FLOP roof."""
        spec = get_platform("RTX 2080Ti").spec
        trace = self._trace_with_dense(100_000, 4)
        rep = get_platform("RTX 2080Ti").run(trace)
        flop_time = trace.specs[0].flops / (
            spec.peak_gflops * 1e9 * spec.dense_efficiency
        )
        assert rep.total_seconds > flop_time * 2
