"""Tests for the Mesorasi model and delayed-aggregation transform."""

import pytest

from repro.baselines import (
    MESORASI_HW,
    UnsupportedModelError,
    delayed_aggregation_transform,
    get_platform,
    mesorasi_sw,
)
from repro.nn.models import build_trace
from repro.nn.trace import LayerKind

SCALE = 0.08


@pytest.fixture(scope="module")
def pn_trace():
    return build_trace("PointNet++(c)", scale=SCALE, seed=2)


@pytest.fixture(scope="module")
def mink_trace():
    return build_trace("MinkNet(i)", scale=SCALE, seed=2)


class TestTransform:
    def test_mlp_rows_shrink_to_input_points(self, pn_trace):
        transformed = delayed_aggregation_transform(pn_trace)
        orig_mlps = pn_trace.by_kind(LayerKind.DENSE_MM)
        new_mlps = transformed.by_kind(LayerKind.DENSE_MM)
        assert len(new_mlps) == len(orig_mlps)
        # SA-block MLPs now run on n points, not n_maps rows.
        delayed = [s for s in new_mlps if s.name.endswith("@delayed")]
        assert delayed
        for spec in delayed:
            assert spec.rows < max(s.rows for s in orig_mlps)

    def test_total_macs_reduced(self, pn_trace):
        transformed = delayed_aggregation_transform(pn_trace)
        assert transformed.total_macs < pn_trace.total_macs

    def test_gather_moves_mlp_outputs(self, pn_trace):
        transformed = delayed_aggregation_transform(pn_trace)
        delayed_gathers = [
            s for s in transformed.by_kind(LayerKind.GATHER)
            if s.name.endswith("@delayed")
        ]
        assert delayed_gathers
        # Gather width equals the MLP's output channels, wider than the
        # raw inputs it used to move.
        assert all(s.c_in >= 64 for s in delayed_gathers)

    def test_mapping_ops_untouched(self, pn_trace):
        transformed = delayed_aggregation_transform(pn_trace)
        assert len(transformed.mapping_specs) == len(pn_trace.mapping_specs)

    def test_sparseconv_rejected(self, mink_trace):
        with pytest.raises(UnsupportedModelError):
            delayed_aggregation_transform(mink_trace)


class TestMesorasiHW:
    def test_runs_pointnetpp(self, pn_trace):
        rep = MESORASI_HW.run(pn_trace)
        assert rep.total_seconds > 0
        assert rep.platform == "Mesorasi"

    def test_rejects_sparseconv(self, mink_trace):
        with pytest.raises(UnsupportedModelError):
            MESORASI_HW.run(mink_trace)

    def test_delayed_aggregation_beats_plain_npu(self, pn_trace):
        """Delayed aggregation is Mesorasi's speedup mechanism: fewer MLP
        rows must beat executing the unmodified trace on the same NPU."""
        with_da = MESORASI_HW.run(pn_trace, apply_transform=True)
        without = MESORASI_HW.run(pn_trace, apply_transform=False)
        assert with_da.total_seconds < without.total_seconds

    def test_slower_than_pointacc_edge(self, pn_trace):
        from repro.core import PointAccModel, POINTACC_EDGE

        edge = PointAccModel(POINTACC_EDGE).run(pn_trace)
        meso = MESORASI_HW.run(pn_trace)
        assert meso.total_seconds > edge.total_seconds

    def test_mapping_runs_on_mobile_gpu(self, pn_trace):
        rep = MESORASI_HW.run(pn_trace)
        frac = rep.latency_fractions()
        assert frac["mapping"] > 0.1  # neighbor search not accelerated


class TestMesorasiSW:
    def test_runs_on_edge_platforms(self, pn_trace):
        for name in ("Jetson Nano", "Raspberry Pi 4B"):
            rep = mesorasi_sw(pn_trace, get_platform(name))
            assert rep.total_seconds > 0
            assert name in rep.platform

    def test_sw_faster_than_hw_is_false(self, pn_trace):
        """Mesorasi-HW (dedicated NPU+AU) beats its software emulation on
        a Raspberry Pi by a wide margin."""
        hw = MESORASI_HW.run(pn_trace)
        sw = mesorasi_sw(pn_trace, get_platform("Raspberry Pi 4B"))
        assert hw.total_seconds < sw.total_seconds
