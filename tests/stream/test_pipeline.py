"""StreamSession mechanics: ordering, stats, QoS, executor wiring."""

import numpy as np
import pytest

from repro.cluster import EngineCluster
from repro.engine import SimulationEngine
from repro.stream import (
    FrameSequence,
    SequenceConfig,
    StreamSession,
    StreamStats,
    TileMapCache,
)

CFG = SequenceConfig(seed=9, n_frames=4, base_points=900, fov=12.0)


@pytest.fixture
def seq():
    return FrameSequence(CFG)


class TestSessionBasics:
    def test_frames_served_in_order(self, seq):
        session = StreamSession(seq, "PointNet++(c)", scale=0.2)
        results = session.run(3)
        assert [f.index for f in results] == [0, 1, 2]
        assert all(f.completed for f in results)
        # a second run() continues where the first stopped
        assert [f.index for f in session.run(1)] == [3]

    def test_requests_carry_stream_identity(self, seq):
        session = StreamSession(seq, "PointNet++(c)", scale=0.2,
                                deadline_ms=1e6)
        req = session.request(2)
        assert req.benchmark == session.notation
        assert req.seed == 2 and req.tenant == "stream"
        assert req.deadline_ms == 1e6

    def test_geometry_only_auto(self, seq):
        assert StreamSession(seq, "MinkNet(o)").geometry_only
        assert not StreamSession(seq, "PointNet++(c)").geometry_only
        assert StreamSession(seq, "PointNet++(c)",
                             geometry_only=True).geometry_only

    def test_executor_exclusivity_and_validation(self, seq):
        with pytest.raises(ValueError):
            StreamSession(seq, engine=SimulationEngine(),
                          cluster=EngineCluster(n_shards=1))
        with pytest.raises(ValueError):
            StreamSession(seq, period_ms=0)

    def test_injected_engine_is_used(self, seq):
        engine = SimulationEngine(backends=("pointacc",))
        session = StreamSession(seq, "PointNet++(c)", scale=0.2, engine=engine)
        session.run(2)
        assert engine.stats().requests == 2
        assert session.tile_cache is None  # injected engine had no front


class TestStats:
    def test_stats_account_for_every_frame(self, seq):
        session = StreamSession(seq, "PointNet++(c)", scale=0.2)
        session.run(4)
        stats = session.stats()
        assert stats.frames == stats.completed == 4
        assert stats.dropped == stats.rejected == 0
        assert len(stats.latencies_ms) == 4
        assert stats.wall_seconds > 0
        assert stats.throughput_fps > 0

    def test_percentiles_nearest_rank(self):
        stats = StreamStats(latencies_ms=[10.0, 20.0, 30.0, 40.0])
        assert stats.latency_ms(50) == 20.0
        assert stats.latency_ms(99) == 40.0
        assert stats.latency_ms(100) == 40.0
        assert StreamStats().latency_ms(50) == 0.0

    def test_summary_carries_tiles_and_executor(self, seq):
        session = StreamSession(seq, "MinkNet(o)", scale=0.2, min_points=64)
        session.run(2)
        summary = session.summary()
        assert summary["frames"] == 2
        assert summary["geometry_only"] is True
        assert summary["sequence"] == seq.token
        assert "tiles" in summary and "executor" in summary
        assert summary["latency_p99_ms"] >= summary["latency_p50_ms"] > 0


class TestQoS:
    def test_drop_late_sheds_expired_frames(self, seq):
        """deadline 0 with a long period: frame 0 dispatches (clock 0), and
        once the first simulation exceeds every later arrival+0 budget the
        rest are shed without simulating."""
        session = StreamSession(seq, "PointNet++(c)", scale=0.2,
                                deadline_ms=0.0, period_ms=0.001,
                                drop_late=True)
        results = session.run(4)
        assert not results[0].dropped  # nothing elapsed before frame 0
        assert all(f.dropped for f in results[1:])
        stats = session.stats()
        assert stats.dropped == 3 and stats.completed == 1

    def test_no_drops_without_flag(self, seq):
        session = StreamSession(seq, "PointNet++(c)", scale=0.2,
                                deadline_ms=0.0, period_ms=0.001)
        assert all(not f.dropped for f in session.run(3))

    def test_cluster_scores_deadlines(self, seq):
        cluster = EngineCluster(n_shards=1, backends=("pointacc",))
        session = StreamSession(seq, "PointNet++(c)", scale=0.2,
                                cluster=cluster, deadline_ms=1e9)
        results = session.run(2)
        assert all(f.result.deadline_met is True for f in results)
        assert session.stats().deadline_met == 2

    def test_cluster_rejection_counts_as_rejected(self, seq):
        """A deadline the admission controller can prove hopeless is
        rejected by the cluster, not silently dropped."""
        cluster = EngineCluster(n_shards=1, backends=("pointacc",))
        session = StreamSession(seq, "PointNet++(c)", scale=0.2,
                                cluster=cluster)
        session.run(1)  # prime the QoS cost estimate for this workload
        session.deadline_ms = 1e-9
        results = session.run(2)
        rejected = [f for f in results if f.rejected]
        if rejected:  # admission needs a cost estimate to reject
            stats = session.stats()
            assert stats.rejected == len(rejected)
            assert all(not f.completed for f in rejected)


class TestTileReuseEndToEnd:
    def test_consecutive_frames_hit_tiles(self, seq):
        session = StreamSession(seq, "MinkNet(o)", scale=0.25, min_points=64)
        session.run(1)
        assert session.tile_cache.stats().tile_hits == 0  # first frame: cold
        session.run(2)
        snap = session.tile_cache.stats().snapshot()
        assert snap["tile_hits"] > 0
        assert "kernel_map/mergesort" in snap["by_op"]

    def test_tile_stats_reachable_from_engine_stats(self, seq):
        session = StreamSession(seq, "MinkNet(o)", scale=0.2, min_points=64)
        session.run(1)
        engine_snap = session.executor.stats().map_cache
        assert engine_snap["front"]["decomposed_calls"] > 0
        tier_ops = engine_snap["tiers"][0]["by_op"]
        assert any(op.endswith("/tile") for op in tier_ops)
