"""Frame sequences: determinism, overlap structure, registry plumbing."""

import numpy as np
import pytest

from repro.nn.models.registry import get_benchmark, run_benchmark, split_notation
from repro.stream import FrameSequence, SequenceConfig, get_sequence

CFG = SequenceConfig(seed=5, n_frames=6, base_points=3000)


@pytest.fixture
def seq():
    return FrameSequence(CFG)


class TestDeterminism:
    def test_frames_reproducible(self, seq):
        a = seq.frame(3, scale=0.5).points
        b = FrameSequence(CFG).frame(3, scale=0.5).points
        assert np.array_equal(a, b)

    def test_token_is_config_content(self, seq):
        assert seq.token == FrameSequence(CFG).token
        assert seq.token != FrameSequence(SequenceConfig(seed=6)).token

    def test_frame_index_validated(self, seq):
        with pytest.raises(ValueError):
            seq.frame(-1)


class TestOverlapStructure:
    def test_consecutive_frames_share_exact_points(self, seq):
        """The temporal-reuse premise: a large fraction of world points are
        bit-identical between consecutive frames, in stable relative order."""
        f0 = seq.frame(0, scale=0.5).points
        f1 = seq.frame(1, scale=0.5).points
        set0 = {p.tobytes() for p in f0}
        shared = [p.tobytes() for p in f1 if p.tobytes() in set0]
        assert len(shared) > 0.6 * min(len(f0), len(f1))
        # Stable order: shared points appear in the same relative order.
        pos0 = {p.tobytes(): i for i, p in enumerate(f0)}
        order = [pos0[b] for b in shared]
        assert order == sorted(order)

    def test_ego_motion_turns_over_the_fov(self, seq):
        f0 = seq.frame(0, scale=0.5).points
        # After driving a full FOV length, the frame is (mostly) new ground.
        far_index = int((2 * CFG.fov) / CFG.speed) + 2
        f_far = seq.frame(far_index, scale=0.5).points
        set0 = {p.tobytes() for p in f0}
        shared = sum(1 for p in f_far if p.tobytes() in set0)
        assert shared < 0.1 * len(f_far)

    def test_frames_track_the_ego_window(self, seq):
        # Static points respect the FOV box exactly; dynamic objects are
        # gated on their *center*, so their extent (a car length) and
        # jitter may poke past the edge.
        margin = 6.0
        for i in (0, 2, 5):
            pts = seq.frame(i, scale=0.5).points
            assert np.all(
                np.abs(pts[:, 0] - seq.ego_position(i)) <= CFG.fov + margin
            )


class TestRegistryPlumbing:
    def test_notation_registers_and_resolves(self, seq):
        notation = seq.notation("PointNet++(c)")
        base, source = split_notation(notation)
        assert base == "PointNet++(c)"
        scheme, _, token = source.partition(":")
        assert scheme == "stream"
        assert get_sequence(token) is seq
        assert get_benchmark(notation).notation == "PointNet++(c)"

    def test_unknown_token_raises(self):
        with pytest.raises(KeyError):
            get_sequence("feedfacefeedface")

    def test_run_benchmark_uses_the_frame(self, seq):
        notation = seq.notation("PointNet++(c)")
        trace, _ = run_benchmark(notation, scale=0.4, seed=2)
        assert trace.input_points == seq.frame(2, scale=0.4).n

    def test_model_seed_fixed_across_frames(self, seq):
        """Frame index picks the cloud, not the weights: equal layer shapes
        and channel plans across frames of one sequence."""
        notation = seq.notation("PointNet++(c)")
        t2, _ = run_benchmark(notation, scale=0.4, seed=2)
        t4, _ = run_benchmark(notation, scale=0.4, seed=4)
        assert [s.name for s in t2] == [s.name for s in t4]

    def test_geometry_only_sparseconv_trace_matches_functional(self, seq):
        notation = seq.notation("MinkNet(i)")
        full, _ = run_benchmark(notation, scale=0.3, seed=1)
        geo, out = run_benchmark(notation, scale=0.3, seed=1, geometry_only=True)
        assert [s.name for s in full] == [s.name for s in geo]
        for a, b in zip(full, geo):
            assert (a.kind, a.n_in, a.n_out, a.c_in, a.c_out, a.rows, a.n_maps) \
                == (b.kind, b.n_in, b.n_out, b.c_in, b.c_out, b.rows, b.n_maps)
