"""TileMapCache exactness: decomposed ops equal the reference, bit for bit.

These are op-level checks (the network-level bit-identity lives in
``tests/properties/test_prop_stream.py``): for random clouds and a range of
tile/halo configurations, the tile front's composed answers must equal the
plain reference computation exactly — indices, distances, row order — on
cold caches, warm caches, and across perturbed "next frames".
"""

import sys

import numpy as np
import pytest

from repro.engine import MapCache
from repro.mapping.ball_query import ball_query_indices
from repro.mapping.hooks import TieredLookup, use_map_cache
from repro.mapping.kernel_map import kernel_map
from repro.mapping.knn import knn_indices
from repro.pointcloud.coords import quantize_unique, voxelize
from repro.stream import TileMapCache
from repro.stream.incremental import PerTileOracle

_FRONT_CLS = TileMapCache


def _front(chain_entries=1 << 15, **kwargs):
    kwargs.setdefault("min_points", 1)
    front = _FRONT_CLS(**kwargs)
    chain = TieredLookup([MapCache(max_entries=chain_entries)], front=front)
    return front, chain


@pytest.fixture(params=[TileMapCache, PerTileOracle],
                ids=["planner", "oracle"], autouse=True)
def front_cls(request, monkeypatch):
    """Run every exactness test against both fronts.

    The batched planner serves all production traffic; the per-tile
    oracle is the retired reference implementation the planner is proven
    against.  Both must satisfy every contract in this file.
    """
    monkeypatch.setattr(sys.modules[__name__], "_FRONT_CLS", request.param)
    return request.param


def _clouds(rng, n_q=300, n_r=400, span=20.0):
    return rng.uniform(0, span, (n_q, 3)), rng.uniform(0, span, (n_r, 3))


class TestKnnExact:
    @pytest.mark.parametrize("tile_size,halo", [(2.0, 1), (4.0, 1), (4.0, 2),
                                                (8.0, 0), (30.0, 1)])
    def test_matches_reference(self, rng, tile_size, halo):
        queries, references = _clouds(rng)
        expect_idx, expect_dist = knn_indices(queries, references, 8)
        _, chain = _front(tile_size=tile_size, halo=halo)
        with use_map_cache(chain):
            got_idx, got_dist = knn_indices(queries, references, 8)
        assert np.array_equal(expect_idx, got_idx)
        # Distances: exact value up to BLAS sub-matrix rounding (see the
        # floating-point note in repro.stream.incremental).
        assert np.allclose(expect_dist, got_dist, rtol=1e-12, atol=1e-9)

    def test_warm_hit_still_exact(self, rng):
        queries, references = _clouds(rng)
        expect = knn_indices(queries, references, 5)
        front, chain = _front(tile_size=4.0, halo=1)
        with use_map_cache(chain):
            knn_indices(queries, references, 5)
            warm_idx, warm_dist = knn_indices(queries, references, 5)
        assert front.stats().tile_hits > 0
        assert np.array_equal(expect[0], warm_idx)
        assert np.allclose(expect[1], warm_dist, rtol=1e-12, atol=1e-9)

    def test_cross_frame_reuse_is_exact(self, rng):
        """Perturb one region; unchanged tiles hit, answers stay exact."""
        queries, references = _clouds(rng, n_q=500, n_r=500, span=32.0)
        front, chain = _front(tile_size=4.0, halo=1)
        with use_map_cache(chain):
            knn_indices(queries, queries, 6)
        # next frame: points in one corner move, the rest are byte-stable
        moved = queries.copy()
        corner = np.all(queries < 6.0, axis=1)
        moved[corner] += 0.25
        expect = knn_indices(moved, moved, 6)
        before = front.stats().tile_hits
        with use_map_cache(chain):
            got = knn_indices(moved, moved, 6)
        assert front.stats().tile_hits > before  # clean tiles reused
        assert np.array_equal(expect[0], got[0])
        assert np.allclose(expect[1], got[1], rtol=1e-12, atol=1e-9)

    def test_duplicate_points_tie_breaks(self, rng):
        """Exact ties stress the index-order tie-break across halos."""
        base = np.round(rng.uniform(0, 12, (150, 3)) * 2) / 2  # many collisions
        queries = np.concatenate([base, base[:40]])
        _, chain = _front(tile_size=3.0, halo=1)
        expect = knn_indices(queries, queries, 4)
        with use_map_cache(chain):
            got = knn_indices(queries, queries, 4)
        assert np.array_equal(expect[0], got[0])

    def test_k_larger_than_references_falls_back(self, rng):
        queries = rng.uniform(0, 8, (40, 3))
        references = rng.uniform(0, 8, (5, 3))
        front, chain = _front(tile_size=2.0, halo=1)
        expect = knn_indices(queries, references, 9)
        with use_map_cache(chain):
            got = knn_indices(queries, references, 9)
        assert np.array_equal(expect[0], got[0])
        assert front.stats().fallback_rows == len(queries)


class TestBallQueryExact:
    @pytest.mark.parametrize("tile_size,halo,radius", [
        (2.0, 1, 1.5),   # full cover (2.0 >= 1.5)
        (4.0, 1, 2.0),   # full cover
        (2.0, 1, 3.0),   # under-cover: certificate path
        (3.0, 0, 1.0),   # degenerate halo: fallback-heavy
    ])
    def test_matches_reference(self, rng, tile_size, halo, radius):
        queries, references = _clouds(rng)
        expect = ball_query_indices(queries, references, radius, 6)
        _, chain = _front(tile_size=tile_size, halo=halo)
        with use_map_cache(chain):
            got = ball_query_indices(queries, references, radius, 6)
        assert np.array_equal(expect, got)

    def test_isolated_queries_use_global_nearest_fallback(self, rng):
        """A query with no in-radius neighbor pads with the *global* nearest
        reference — which may live far outside the halo."""
        references = rng.uniform(0, 4, (60, 3))
        lonely = np.array([[30.0, 30.0, 30.0]])
        queries = np.concatenate([rng.uniform(0, 4, (50, 3)), lonely])
        expect = ball_query_indices(queries, references, 0.5, 4)
        front, chain = _front(tile_size=2.0, halo=1)
        with use_map_cache(chain):
            got = ball_query_indices(queries, references, 0.5, 4)
        assert np.array_equal(expect, got)
        assert front.stats().fallback_rows >= 1

    def test_warm_reuse_exact(self, rng):
        queries, references = _clouds(rng)
        expect = ball_query_indices(queries, references, 2.0, 8)
        front, chain = _front(tile_size=4.0, halo=1)
        with use_map_cache(chain):
            ball_query_indices(queries, references, 2.0, 8)
            got = ball_query_indices(queries, references, 2.0, 8)
        assert front.stats().tile_hits > 0
        assert np.array_equal(expect, got)


class TestKernelMapExact:
    @pytest.mark.parametrize("algorithm", ["mergesort", "hash", "bruteforce"])
    @pytest.mark.parametrize("voxel_tile", [4, 16])
    def test_matches_reference_including_row_order(self, rng, algorithm,
                                                   voxel_tile):
        coords, _ = quantize_unique(
            rng.integers(0, 60, (500, 3)), 1
        )
        expect = kernel_map(coords, coords, kernel_size=3, algorithm=algorithm)
        _, chain = _front(voxel_tile=voxel_tile)
        with use_map_cache(chain):
            got = kernel_map(coords, coords, kernel_size=3, algorithm=algorithm)
        assert np.array_equal(expect.in_idx, got.in_idx)
        assert np.array_equal(expect.out_idx, got.out_idx)
        assert np.array_equal(expect.weight_idx, got.weight_idx)
        assert expect.kernel_volume == got.kernel_volume

    def test_strided_downsampling_maps(self, rng):
        pts = rng.uniform(0, 10, (800, 3))
        in_coords, _ = voxelize(pts, 0.4)
        out_coords, _ = quantize_unique(in_coords, 2)
        expect = kernel_map(in_coords, out_coords, kernel_size=2)
        _, chain = _front(voxel_tile=8)
        with use_map_cache(chain):
            got = kernel_map(in_coords, out_coords, kernel_size=2)
        assert np.array_equal(expect.in_idx, got.in_idx)
        assert np.array_equal(expect.out_idx, got.out_idx)
        assert np.array_equal(expect.weight_idx, got.weight_idx)

    def test_cross_frame_tile_reuse(self, rng):
        coords, _ = quantize_unique(rng.integers(0, 80, (900, 3)), 1)
        front, chain = _front(voxel_tile=8)
        with use_map_cache(chain):
            kernel_map(coords, coords, kernel_size=3)
        # Next frame: drop a spatially-confined corner of the cloud.
        keep = ~np.all(coords < 8, axis=1)
        nxt = coords[keep]
        expect = kernel_map(nxt, nxt, kernel_size=3)
        before = front.stats().tile_hits
        with use_map_cache(chain):
            got = kernel_map(nxt, nxt, kernel_size=3)
        assert front.stats().tile_hits > before
        assert np.array_equal(expect.in_idx, got.in_idx)
        assert np.array_equal(expect.out_idx, got.out_idx)
        assert np.array_equal(expect.weight_idx, got.weight_idx)


class TestGatingAndStats:
    def test_small_clouds_pass_through(self, rng):
        front = _FRONT_CLS(min_points=1000)
        chain = TieredLookup([MapCache()], front=front)
        queries, references = _clouds(rng, n_q=50, n_r=50)
        with use_map_cache(chain):
            knn_indices(queries, references, 3)
        assert front.stats().decomposed_calls == 0
        assert chain.stats().misses == 1  # went down the digest path

    def test_feature_space_knn_passes_through(self, rng):
        front, chain = _front()
        features = rng.normal(size=(300, 16))  # DGCNN-style feature graph
        with use_map_cache(chain):
            knn_indices(features, features, 4)
        assert front.stats().decomposed_calls == 0

    def test_fps_passes_through(self, rng):
        from repro.mapping import farthest_point_sampling

        front, chain = _front()
        with use_map_cache(chain):
            farthest_point_sampling(rng.normal(size=(300, 3)), 32)
        assert front.stats().decomposed_calls == 0
        assert "fps" in chain.stats().by_op

    def test_snapshot_shape(self, rng):
        front, chain = _front(tile_size=4.0)
        queries, references = _clouds(rng)
        with use_map_cache(chain):
            knn_indices(queries, references, 4)
        snap = front.stats().snapshot()
        assert snap["decomposed_calls"] == 1
        assert snap["tile_lookups"] == snap["tile_hits"] + snap["tile_misses"]
        assert "knn" in snap["by_op"]
        chain_snap = chain.stats().snapshot()
        assert chain_snap["front"] == snap
        assert "knn/tile" in chain_snap["tiers"][0]["by_op"]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TileMapCache(tile_size=0)
        with pytest.raises(ValueError):
            TileMapCache(halo=-1)
        with pytest.raises(ValueError):
            TileMapCache(voxel_tile=0)

    def test_engine_requires_a_tier_for_tiles(self):
        from repro.engine import SimulationEngine

        with pytest.raises(ValueError):
            SimulationEngine(map_cache=None, tile_cache=TileMapCache())


class TestVoxelizeExact:
    @pytest.mark.parametrize("voxel_tile", [4, 16, 48])
    def test_matches_reference(self, rng, voxel_tile):
        points = rng.uniform(-20, 20, (3000, 3))
        expect_v, expect_i = voxelize(points, 0.1)
        front, chain = _front(voxel_tile=voxel_tile)
        with use_map_cache(chain):
            got_v, got_i = voxelize(points, 0.1)
        assert np.array_equal(expect_v, got_v)
        assert np.array_equal(expect_i, got_i)
        assert got_v.dtype == expect_v.dtype and got_i.dtype == expect_i.dtype
        assert front.stats().by_op["voxelize"]["misses"] > 0

    def test_warm_and_cross_frame_reuse_exact(self, rng):
        points = rng.uniform(0, 30, (4000, 3))
        front, chain = _front(voxel_tile=16)
        with use_map_cache(chain):
            voxelize(points, 0.1)
        # Next frame: one corner moves, the rest byte-stable.
        moved = points.copy()
        corner = np.all(points < 6.0, axis=1)
        moved[corner] += 0.3
        expect = voxelize(moved, 0.1)
        before = front.stats().tile_hits
        with use_map_cache(chain):
            got = voxelize(moved, 0.1)
        assert front.stats().tile_hits > before  # clean tiles reused
        assert np.array_equal(expect[0], got[0])
        assert np.array_equal(expect[1], got[1])

    def test_certificate_failure_falls_back_globally(self, rng):
        """A corrupted cached tile entry (out-of-order keys) must drop the
        call to the global reference computation, not a wrong answer."""
        points = rng.uniform(0, 10, (1500, 3))
        expect = voxelize(points, 0.2)
        front = _FRONT_CLS(min_points=1, voxel_tile=8)
        tier = MapCache(max_entries=1 << 15)
        chain = TieredLookup([tier], front=front)
        with use_map_cache(chain):
            voxelize(points, 0.2)
        # Vandalize every cached voxel tile: reverse the sorted keys.
        # Composed whole-call entries (2-D voxel arrays) are dropped so
        # the replay must recompose from the corrupted tiles.
        for key, entry in list(tier._entries.items()):
            if not (isinstance(entry, tuple) and len(entry) == 2):
                continue
            if entry[0].ndim == 1:
                tier._entries[key] = (entry[0][::-1].copy(), entry[1])
            else:
                del tier._entries[key]
        with use_map_cache(chain):
            got = voxelize(points, 0.2)
        assert np.array_equal(expect[0], got[0])
        assert np.array_equal(expect[1], got[1])
        assert front.stats().fallback_rows >= len(points)

    def test_incremental_voxelize_off_passes_through(self, rng):
        points = rng.uniform(0, 10, (1000, 3))
        front, chain = _front(incremental_voxelize=False)
        with use_map_cache(chain):
            voxelize(points, 0.2)
        assert "voxelize" not in front.stats().by_op
        assert chain.stats().misses == 1  # whole-content digest path

    def test_no_cache_no_change(self, rng):
        points = rng.uniform(0, 10, (500, 3))
        a = voxelize(points, 0.25)
        b = voxelize(points, 0.25)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])


class TestShellExactness:
    """Reach-shell kernel maps: the shell is the exact dependence region."""

    @pytest.mark.parametrize("stride", [1, 2, 4])
    def test_strided_stencils_match_reference(self, rng, stride):
        coords, _ = quantize_unique(rng.integers(0, 96, (700, 3)), stride)
        expect = kernel_map(coords, coords, kernel_size=3,
                            tensor_stride=stride)
        _, chain = _front(voxel_tile=16)
        with use_map_cache(chain):
            got = kernel_map(coords, coords, kernel_size=3,
                             tensor_stride=stride)
        assert np.array_equal(expect.in_idx, got.in_idx)
        assert np.array_equal(expect.out_idx, got.out_idx)
        assert np.array_equal(expect.weight_idx, got.weight_idx)

    def test_interior_churn_does_not_dirty_neighbors(self, rng):
        """The shell property itself: moving points strictly interior to
        one tile (farther than ``reach`` from its boundary) leaves every
        *other* tile's sub-key untouched."""
        side = 32  # voxel_tile 32, kernel 3 -> reach 1
        coords, _ = quantize_unique(rng.integers(0, 4 * side, (2500, 3)), 1)
        front, chain = _front(voxel_tile=side)
        with use_map_cache(chain):
            kernel_map(coords, coords, kernel_size=3)
        # Move a point that sits deep inside its tile (rel coords in
        # [8, 24) of a 32-side tile) to another interior position.
        rel = coords % side
        interior = np.all((rel >= 8) & (rel < side - 8), axis=1)
        assert interior.any()
        moved = coords.copy()
        moved[np.flatnonzero(interior)[0]] += 3  # still interior
        nxt, _ = quantize_unique(moved, 1)
        expect = kernel_map(nxt, nxt, kernel_size=3)
        per_tile = front.stats().by_op["kernel_map/mergesort"]
        h0, m0 = per_tile["hits"], per_tile["misses"]
        with use_map_cache(chain):
            got = kernel_map(nxt, nxt, kernel_size=3)
        misses = per_tile["misses"] - m0
        hits = per_tile["hits"] - h0
        # Exactly one tile recomputes; every other tile's shell key is
        # byte-identical and hits.  (The per-tile counter, specifically:
        # the aggregate also sees the whole-call probe miss.)
        assert misses == 1 and hits > 0
        assert np.array_equal(expect.in_idx, got.in_idx)
        assert np.array_equal(expect.out_idx, got.out_idx)
        assert np.array_equal(expect.weight_idx, got.weight_idx)
