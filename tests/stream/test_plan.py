"""The batched planner: key disjointness, batch chain API, composition.

Exactness of the batched front against the reference ops is covered by
``test_incremental.py`` (parametrized over planner and oracle) and the
property suites; this file pins the plan-specific machinery — the
versioned fixed-width key universe (disjoint from the oracle's legacy
digests by construction), the ``get_many``/``put_many`` chain semantics,
whole-call reuse, the kernel composer's splice and its certificate, and
the small-cloud density bypass.
"""

import numpy as np
import pytest

from repro.engine import MapCache
from repro.mapping.hooks import TieredLookup, use_map_cache
from repro.mapping.kernel_map import kernel_map
from repro.mapping.knn import knn_indices
from repro.pointcloud.coords import quantize_unique, voxelize
from repro.stream import TileMapCache
from repro.stream.incremental import PerTileOracle
from repro.stream.tiles import TilePartition


def _pair(oracle=False, tier=None, **kwargs):
    kwargs.setdefault("min_points", 1)
    cls = PerTileOracle if oracle else TileMapCache
    front = cls(**kwargs)
    tier = tier if tier is not None else MapCache(max_entries=1 << 15)
    return front, tier, TieredLookup([tier], front=front)


class TestKeyDisjointness:
    """Planner and oracle keys can never collide: warming either front
    leaves the other stone cold in a shared store (the planner's keys
    carry a versioned fixed-width prefix and are all longer than the
    oracle's 16-byte ``content_digest`` sub-keys), while both still
    produce the exact reference arrays."""

    @pytest.mark.parametrize("warm_oracle", [True, False])
    def test_kernel_map_universes_disjoint(self, rng, warm_oracle):
        coords, _ = quantize_unique(rng.integers(0, 80, (900, 3)), 1)
        _, tier, chain = _pair(warm_oracle, voxel_tile=8)
        with use_map_cache(chain):
            kernel_map(coords, coords, kernel_size=3)
        replay, _, chain2 = _pair(not warm_oracle, tier=tier, voxel_tile=8)
        with use_map_cache(chain2):
            got = kernel_map(coords, coords, kernel_size=3)
        per_tile = replay.stats().by_op["kernel_map/mergesort"]
        assert per_tile["hits"] == 0 and per_tile["misses"] > 0
        expect = kernel_map(coords, coords, kernel_size=3)
        assert np.array_equal(expect.in_idx, got.in_idx)
        assert np.array_equal(expect.out_idx, got.out_idx)
        assert np.array_equal(expect.weight_idx, got.weight_idx)

    @pytest.mark.parametrize("warm_oracle", [True, False])
    def test_knn_universes_disjoint(self, rng, warm_oracle):
        cloud = rng.uniform(0, 20, (400, 3))
        _, tier, chain = _pair(warm_oracle, tile_size=4.0)
        with use_map_cache(chain):
            knn_indices(cloud, cloud, 5)
        replay, _, chain2 = _pair(not warm_oracle, tier=tier, tile_size=4.0)
        with use_map_cache(chain2):
            got = knn_indices(cloud, cloud, 5)
        per_tile = replay.stats().by_op["knn"]
        assert per_tile["hits"] == 0 and per_tile["misses"] > 0
        assert np.array_equal(knn_indices(cloud, cloud, 5)[0], got[0])

    @pytest.mark.parametrize("warm_oracle", [True, False])
    def test_voxelize_universes_disjoint(self, rng, warm_oracle):
        pts = rng.uniform(0, 30, (3000, 3))
        _, tier, chain = _pair(warm_oracle, voxel_tile=16)
        with use_map_cache(chain):
            voxelize(pts, 0.1)
        replay, _, chain2 = _pair(not warm_oracle, tier=tier, voxel_tile=16)
        with use_map_cache(chain2):
            got = voxelize(pts, 0.1)
        per_tile = replay.stats().by_op["voxelize"]
        assert per_tile["hits"] == 0 and per_tile["misses"] > 0
        expect = voxelize(pts, 0.1)
        assert np.array_equal(expect[0], got[0])
        assert np.array_equal(expect[1], got[1])


class TestKeyFormat:
    """The versioned fixed-width key encoding itself."""

    def test_prefix_is_versioned_and_fixed_width(self):
        from repro.stream.plan import _KEY_VERSION, _key_prefix

        pre = _key_prefix(b"tile/voxelize", 64)
        assert pre.startswith(_KEY_VERSION)
        assert len(pre) == len(_KEY_VERSION) + 16
        assert pre != _key_prefix(b"tile/voxelize", 128)
        assert pre == _key_prefix(b"tile/voxelize", 64)

    def test_serving_keys_cannot_collide_with_legacy_digests(self):
        """Every legacy sub-key is exactly 16 bytes (a bare blake2b
        digest); every versioned serving key is prefix + >= 1 component
        digest, i.e. >= 34 bytes — disjoint by length alone, for any
        content."""
        from repro.stream.plan import _key_prefix
        from repro.stream.tiles import content_digest

        legacy = content_digest(b"tile/voxelize", 64, b"anything")
        assert len(legacy) == 16
        serving = _key_prefix(b"tile/voxelize", 64) + content_digest(b"x")
        assert len(serving) >= 34

    def test_store_key_sets_disjoint_on_real_traffic(self, rng):
        """Run identical traffic through the planner and the oracle into
        separate stores: not a single key in common, across every op
        family (the whole-call entries only the planner writes
        included)."""
        cloud = rng.uniform(0, 20, (500, 3))
        coords, _ = quantize_unique(rng.integers(0, 64, (700, 3)), 1)
        pts = rng.uniform(0, 30, (2000, 3))
        key_sets = []
        for oracle in (False, True):
            _, tier, chain = _pair(oracle, voxel_tile=8)
            with use_map_cache(chain):
                knn_indices(cloud, cloud, 5)
                kernel_map(coords, coords, kernel_size=3)
                voxelize(pts, 0.1)
            key_sets.append(set(tier._entries.keys()))
        planner_keys, oracle_keys = key_sets
        assert planner_keys and oracle_keys
        assert not (planner_keys & oracle_keys)
        assert all(len(k) == 16 for k in oracle_keys)


class TestBatchChainApi:
    def test_get_many_promotes_and_counts(self):
        l1 = MapCache(max_entries=64)
        l2 = MapCache(max_entries=64)
        chain = TieredLookup([l1, l2])
        keys = [bytes([i]) * 16 for i in range(4)]
        l2.put(keys[1], np.arange(3), "op")
        l2.put(keys[3], np.arange(5), "op")
        values = chain.get_many(keys, "op")
        assert values[0] is None and values[2] is None
        assert np.array_equal(values[1], np.arange(3))
        assert np.array_equal(values[3], np.arange(5))
        # L2 hits were promoted into L1: a second batch hits L1 only.
        assert l1.get(keys[1], "op") is not None
        assert l1.stats().by_op["op"]["hits"] >= 1
        # per-op counting saw every probe
        assert l1.stats().by_op["op"]["misses"] >= 4

    def test_put_many_writes_through_every_tier(self):
        l1 = MapCache(max_entries=64)
        l2 = MapCache(max_entries=64)
        chain = TieredLookup([l1, l2])
        keys = [bytes([i]) * 16 for i in range(3)]
        values = [np.arange(i + 1) for i in range(3)]
        chain.put_many(keys, values, "op")
        for key, value in zip(keys, values):
            assert np.array_equal(l1.get(key, "op"), value)
            assert np.array_equal(l2.get(key, "op"), value)

    def test_get_many_matches_sequential_gets(self):
        l1 = MapCache(max_entries=64)
        chain = TieredLookup([l1])
        keys = [bytes([i]) * 16 for i in range(6)]
        for i in (0, 2, 4):
            l1.put(keys[i], np.array([i]), "op")
        batch = chain.get_many(keys, "op")
        single = [TieredLookup([l1]).get(k, "op") for k in keys]
        for b, s in zip(batch, single):
            assert (b is None) == (s is None)
            if b is not None:
                assert np.array_equal(b, s)


class TestWholeCallReuse:
    def test_identical_kernel_calls_share_one_table(self, rng):
        coords, _ = quantize_unique(rng.integers(0, 60, (600, 3)), 1)
        front, _, chain = _pair(voxel_tile=8)
        with use_map_cache(chain):
            first = kernel_map(coords, coords, kernel_size=3)
            second = kernel_map(coords.copy(), coords.copy(), kernel_size=3)
        # Content-keyed: a fresh equal-content array still hits, and the
        # composed table is the same immutable object (which is what lets
        # the MMU cache-replay memo carry across frames).
        assert second is first
        assert front.stats().by_op["kernel_map/mergesort/whole"]["hits"] == 1

    def test_knn_whole_hits_are_owned(self, rng):
        cloud = rng.uniform(0, 16, (300, 3))
        front, _, chain = _pair(tile_size=4.0)
        with use_map_cache(chain):
            idx1, dist1 = knn_indices(cloud, cloud, 4)
            idx1[:] = -1  # scribble on the result...
            idx2, _ = knn_indices(cloud, cloud, 4)
        # ...and the cached whole-call entry must be unaffected.
        assert not np.array_equal(idx1, idx2)
        assert idx2.base is None
        assert front.stats().by_op["knn/whole"]["hits"] == 1


class TestDeltaComposition:
    def _warm_and_replay(self, coords, nxt, algorithm, chain):
        with use_map_cache(chain):
            kernel_map(coords, coords, kernel_size=3, algorithm=algorithm)
        expect = kernel_map(nxt, nxt, kernel_size=3, algorithm=algorithm)
        with use_map_cache(chain):
            got = kernel_map(nxt, nxt, kernel_size=3, algorithm=algorithm)
        assert np.array_equal(expect.in_idx, got.in_idx)
        assert np.array_equal(expect.out_idx, got.out_idx)
        assert np.array_equal(expect.weight_idx, got.weight_idx)

    @pytest.mark.parametrize("algorithm", ["mergesort", "hash", "bruteforce"])
    def test_splice_on_local_churn_is_exact(self, rng, algorithm):
        coords, _ = quantize_unique(rng.integers(0, 80, (1200, 3)), 1)
        keep = ~np.all(coords < 24, axis=1)
        nxt = np.ascontiguousarray(coords[keep])
        assert len(nxt) < len(coords)  # the scenario is non-trivial
        front, _, chain = _pair(voxel_tile=8)
        self._warm_and_replay(coords, nxt, algorithm, chain)
        assert front._composer.splices >= 1
        assert front._composer.fallbacks == 0

    def test_certificate_catches_nonmonotone_renumbering(self, rng):
        """Reordering whole tiles keeps every sub-key equal but breaks the
        survivors' output-index order; the hash algorithm sorts on that
        index, so the splice must self-reject and full-sort — and still
        produce the exact reference table."""
        coords, _ = quantize_unique(rng.integers(0, 40, (600, 3)), 1)
        part = TilePartition(coords, 8)
        perm = np.concatenate(
            [part.indices(k) for k in reversed(list(part.keys()))]
        )
        shuf = np.ascontiguousarray(coords[perm])
        front, _, chain = _pair(voxel_tile=8)
        self._warm_and_replay(coords, shuf, "hash", chain)
        assert front._composer.fallbacks >= 1

    def test_mergesort_splices_through_renumbering(self, rng):
        """Same tile-block reorder, mergesort order: the minor key is the
        input point's world coordinate — unchanged — so the splice holds
        (and stays exact)."""
        coords, _ = quantize_unique(rng.integers(0, 40, (600, 3)), 1)
        part = TilePartition(coords, 8)
        perm = np.concatenate(
            [part.indices(k) for k in reversed(list(part.keys()))]
        )
        shuf = np.ascontiguousarray(coords[perm])
        front, _, chain = _pair(voxel_tile=8)
        self._warm_and_replay(coords, shuf, "mergesort", chain)
        assert front._composer.splices >= 1
        assert front._composer.fallbacks == 0

    def test_interleaved_callers_splice_with_enough_records(self, rng):
        """Round-robin interleaving (the fleet regime) must still find
        each caller's previous composition when the record capacity
        covers the interleave width."""
        n_callers = 6
        clouds = []
        for i in range(n_callers):
            coords, _ = quantize_unique(
                rng.integers(0, 48, (500, 3)) + 200 * i, 1
            )
            clouds.append(coords)
        front, _, chain = _pair(voxel_tile=8,
                                compose_records=n_callers + 2)
        with use_map_cache(chain):
            for rounds in range(2):
                for i, coords in enumerate(clouds):
                    # Perturb per round so whole-call reuse cannot mask
                    # the composer (drop one corner tile per round,
                    # relative to each caller's own region).
                    keep = ~np.all(coords < 200 * i + 8 * rounds, axis=1)
                    frame = np.ascontiguousarray(coords[keep])
                    assert rounds == 0 or len(frame) < len(coords)
                    kernel_map(frame, frame, kernel_size=3)
        # Round 2: every caller splices against its own round-1 record.
        assert front._composer.splices >= n_callers

    def test_compose_records_validation(self):
        with pytest.raises(ValueError):
            TileMapCache(compose_records=0)

    def test_compose_counters_surface_in_snapshot(self, rng):
        coords, _ = quantize_unique(rng.integers(0, 40, (500, 3)), 1)
        front, _, chain = _pair(voxel_tile=8)
        with use_map_cache(chain):
            kernel_map(coords, coords, kernel_size=3)
        snap = front.stats().snapshot()
        assert snap["compose"]["full_sorts"] >= 1


class TestDensityBypass:
    def test_sparse_cloud_takes_whole_op_path(self, rng):
        # ~500 points over a 20m span at 2m tiles: ~0.5 points per tile.
        cloud = rng.uniform(0, 20, (500, 3))
        front, _, chain = _pair(tile_size=2.0, min_points_per_tile=8)
        expect = knn_indices(cloud, cloud, 4)
        with use_map_cache(chain):
            got = knn_indices(cloud, cloud, 4)
        assert np.array_equal(expect[0], got[0])
        assert front.stats().decomposed_calls == 0
        assert front.stats().bypassed_calls == 1
        assert chain.stats().misses == 1  # the whole-op digest path ran

    def test_dense_cloud_still_decomposes(self, rng):
        cloud = rng.uniform(0, 8, (2000, 3))  # ~30+ points per 2m tile
        front, _, chain = _pair(tile_size=2.0, min_points_per_tile=8)
        with use_map_cache(chain):
            knn_indices(cloud, cloud, 4)
        assert front.stats().decomposed_calls == 1
        assert front.stats().bypassed_calls == 0

    def test_bypass_applies_to_kernel_maps_and_voxelize(self, rng):
        coords, _ = quantize_unique(rng.integers(0, 500, (400, 3)), 1)
        front, _, chain = _pair(voxel_tile=4,
                                min_points_per_tile=16)
        with use_map_cache(chain):
            kernel_map(coords, coords, kernel_size=3)
            voxelize(rng.uniform(0, 300, (400, 3)), 1.0)
        assert front.stats().decomposed_calls == 0
        assert front.stats().bypassed_calls == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            TileMapCache(min_points_per_tile=-1)
