"""Tile partitioning: grouping, digests, halos, canonical order."""

import numpy as np
import pytest

from repro.pointcloud.coords import coords_to_keys
from repro.stream.tiles import (
    TilePartition,
    content_digest,
    halo_box,
    partition,
    tile_coords,
)


@pytest.fixture
def cloud(rng):
    return rng.uniform(-10, 10, size=(400, 3))


class TestTileCoords:
    def test_float_floor(self):
        pts = np.array([[0.1, -0.1, 3.9], [4.0, 7.99, -8.0]])
        assert tile_coords(pts, 4.0).tolist() == [[0, -1, 0], [1, 1, -2]]

    def test_integer_floor_divide(self):
        coords = np.array([[0, -1, 15], [16, 31, -16]])
        assert tile_coords(coords, 16).tolist() == [[0, -1, 0], [1, 1, -1]]

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            tile_coords(np.zeros(5), 1.0)


class TestPartition:
    def test_partition_covers_every_point_once(self, cloud):
        part = partition(cloud, 4.0)
        seen = np.concatenate([part.indices(k) for k in part.keys()])
        assert sorted(seen.tolist()) == list(range(len(cloud)))

    def test_indices_keep_original_order_within_tile(self, cloud):
        part = partition(cloud, 4.0)
        for key in part.keys():
            idx = part.indices(key)
            assert np.all(np.diff(idx) > 0)  # stable grouping => ascending

    def test_unoccupied_tile_is_empty(self, cloud):
        part = partition(cloud, 4.0)
        far = coords_to_keys(np.array([[500, 500, 500]]))[0]
        assert len(part.indices(int(far))) == 0

    def test_digest_depends_on_content_and_order(self, rng):
        pts = rng.uniform(0, 5, size=(32, 3))
        a = TilePartition(pts, 100.0)  # single tile
        b = TilePartition(pts.copy(), 100.0)
        (key,) = a.keys()
        assert a.digest(key) == b.digest(key)
        shuffled = TilePartition(pts[::-1].copy(), 100.0)
        assert shuffled.digest(key) != a.digest(key)  # order matters

    def test_unchanged_tiles_digest_equal_across_frames(self, rng):
        """The streaming invariant: points entering/leaving one region do
        not change any other tile's digest or content."""
        frame0 = rng.uniform(0, 40, size=(600, 3))
        extra = rng.uniform(0, 4, size=(30, 3))  # churn confined to one tile
        keep = ~np.all((frame0 >= 0) & (frame0 < 4), axis=1)
        frame1 = np.concatenate([frame0[keep], extra])
        p0, p1 = partition(frame0, 4.0), partition(frame1, 4.0)
        churn_key = coords_to_keys(np.array([[0, 0, 0]]))[0]
        shared = set(p0.keys()) & set(p1.keys()) - {int(churn_key)}
        assert shared  # the scenario is non-trivial
        for key in shared:
            assert p0.digest(key) == p1.digest(key)
            assert np.array_equal(
                frame0[p0.indices(key)], frame1[p1.indices(key)]
            )


class TestNeighborhood:
    def test_halo_indices_ascending_and_complete(self, cloud):
        part = partition(cloud, 4.0)
        tiles = tile_coords(cloud, 4.0)
        for key in list(part.keys())[:5]:
            hal = part.halo_indices(key, 1)
            assert np.all(np.diff(hal) > 0)
            center = tiles[part.indices(key)[0]]
            inside = np.all(np.abs(tiles - center) <= 1, axis=1)
            assert sorted(hal.tolist()) == np.flatnonzero(inside).tolist()

    def test_halo_zero_is_own_tile(self, cloud):
        part = partition(cloud, 4.0)
        for key in list(part.keys())[:5]:
            assert np.array_equal(part.halo_indices(key, 0), part.indices(key))

    def test_neighborhood_digest_covers_every_constituent(self, rng):
        pts = rng.uniform(0, 12, size=(300, 3))
        part = partition(pts, 4.0)
        key = next(iter(part.keys()))
        digest0, canon0 = part.neighborhood(key, 1)
        # Mutating a *neighbor* tile's content must change the digest.
        moved = pts.copy()
        neighbor = part.indices(key)
        victim = canon0[~np.isin(canon0, neighbor)][0]
        moved[victim] += 0.5
        digest1, _ = partition(moved, 4.0).neighborhood(key, 1)
        assert digest0 != digest1

    def test_canonical_concat_matches_halo_set(self, cloud):
        part = partition(cloud, 4.0)
        for key in list(part.keys())[:5]:
            _, canon = part.neighborhood(key, 1)
            assert sorted(canon.tolist()) == part.halo_indices(key, 1).tolist()


class TestHaloBox:
    def test_counts(self):
        assert len(halo_box(0, 3)) == 1
        assert len(halo_box(1, 3)) == 27
        assert len(halo_box(2, 2)) == 25

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            halo_box(-1, 3)


class TestBatchedPasses:
    """digest_all / fill_slabs must reproduce the per-key paths exactly."""

    def test_digest_all_matches_per_key_digests(self, cloud):
        batched = partition(cloud, 4.0)
        reference = partition(cloud.copy(), 4.0)
        digests = batched.digest_all()
        keys = list(batched.keys())
        assert len(digests) == len(keys)
        for key, digest in zip(keys, digests):
            assert digest == reference.digest(key)

    def test_fill_slabs_matches_per_key_slabs(self, rng):
        coords = rng.integers(0, 64, (800, 3))
        batched = TilePartition(coords, 16)
        reference = TilePartition(coords.copy(), 16)
        batched.fill_slabs(2)
        for key in batched.keys():
            got = batched._slabs(key, 2)
            expect = reference._slabs(key, 2)
            assert set(got) == set(expect)
            for slot in expect:
                assert got[slot][0] == expect[slot][0]
                assert np.array_equal(got[slot][1], expect[slot][1])

    def test_sorted_neighborhood_is_cached_and_consistent(self, cloud):
        part = partition(cloud, 4.0)
        key = next(iter(part.keys()))
        digest, perm, hal = part.sorted_neighborhood(key, 1)
        assert part.sorted_neighborhood(key, 1) == (digest, perm, hal)
        _, canonical = part.neighborhood(key, 1)
        assert np.array_equal(hal, np.sort(canonical))


class TestShellDegenerateCases:
    """Satellite: reach >= tile side, single-tile partitions, empty tiles."""

    def test_reach_beyond_half_side_rejected(self, rng):
        coords = rng.integers(0, 32, (200, 3))
        part = TilePartition(coords, 8)
        key = next(iter(part.keys()))
        with pytest.raises(ValueError):
            part.shell(key, 5)  # 2 * 5 > 8
        # The boundary case 2 * reach == side is legal.
        digest, canonical = part.shell(key, 4)
        assert isinstance(digest, bytes) and canonical.ndim == 1

    def test_single_tile_partition_shell_is_the_tile(self, rng):
        coords = rng.integers(0, 8, (64, 3))
        part = TilePartition(coords, 64)  # everything in one tile
        (key,) = part.keys()
        digest, canonical = part.shell(key, 2)
        # No occupied neighbors: the shell is the tile's own points in
        # original order, and its digest is a pure function of them.
        assert np.array_equal(canonical, part.indices(key))
        again = TilePartition(coords.copy(), 64)
        assert again.shell(key, 2)[0] == digest

    def test_empty_neighbor_equals_absent_neighbor(self, rng):
        """An occupied neighbor whose facing slab is empty contributes
        exactly what an absent neighbor does — the digest must not move
        when interior-only neighbors appear."""
        side = 16
        # Tile (0,0,0): a few interior points.
        center = rng.integers(4, 12, (30, 3))
        part_alone = TilePartition(center, side)
        key = coords_to_keys(np.array([[0, 0, 0]]))[0]
        alone = part_alone.shell(int(key), 2)
        # Add a +x neighbor whose points all sit > reach away from the
        # shared face (x in [side+4, side+12)).
        neighbor = rng.integers(4, 12, (25, 3))
        neighbor[:, 0] += side
        both = np.concatenate([center, neighbor])
        part_both = TilePartition(both, side)
        withn = part_both.shell(int(key), 2)
        assert alone[0] == withn[0]
        assert np.array_equal(alone[1], withn[1])

    def test_digest_moves_only_when_boundary_slab_moves(self, rng):
        """Moving a neighbor's interior point leaves the shell digest
        untouched; moving a boundary-slab point changes it."""
        side = 16
        reach = 2
        center = rng.integers(0, side, (40, 3))
        neighbor = rng.integers(0, side, (40, 3))
        neighbor[:, 0] += side  # the +x neighbor tile
        # Pin one interior point and one low-boundary point.
        neighbor[0] = [side + 8, 8, 8]          # interior (> reach from faces)
        neighbor[1] = [side + 1, 8, 8]          # in the facing low slab
        cloud = np.concatenate([center, neighbor])
        key = int(coords_to_keys(np.array([[0, 0, 0]]))[0])
        base = TilePartition(cloud, side).shell(key, reach)

        interior_moved = cloud.copy()
        interior_moved[len(center)] = [side + 9, 9, 9]  # still interior
        assert TilePartition(interior_moved, side).shell(key, reach)[0] \
            == base[0]

        slab_moved = cloud.copy()
        slab_moved[len(center) + 1] = [side + 2, 8, 8]  # still in the slab
        assert TilePartition(slab_moved, side).shell(key, reach)[0] \
            != base[0]

    def test_slabs_of_boundary_free_tile_are_empty(self):
        side = 16
        coords = np.full((10, 3), 8, dtype=np.int64) + np.arange(10)[:, None] % 3
        part = TilePartition(coords, side)
        key = int(coords_to_keys(np.array([[0, 0, 0]]))[0])
        assert part._slabs(key, 2) == {}
        # And the batched fill agrees.
        part2 = TilePartition(coords.copy(), side)
        part2.fill_slabs(2)
        assert part2._slabs(key, 2) == {}


class TestVectorizedAssembly:
    """Whole-partition shell/neighborhood sweeps: canonical index arrays
    element-identical to the per-tile oracle, digests fixed-width (16
    bytes) and deterministic — including every degenerate shape the
    digest-format migration must survive."""

    def test_fill_shells_matches_oracle_canonicals(self, rng):
        coords = rng.integers(0, 64, (800, 3))
        part = TilePartition(coords, 16)
        oracle = TilePartition(coords.copy(), 16)
        digests, flat, bounds = part.fill_shells(2)
        keys = list(part.keys())
        assert len(digests) == len(keys)
        for i, key in enumerate(keys):
            _, canonical = oracle.shell(key, 2)
            assert np.array_equal(flat[bounds[i]:bounds[i + 1]], canonical)
            assert isinstance(digests[i], bytes) and len(digests[i]) == 16

    def test_fill_neighborhoods_matches_oracle_canonicals(self, cloud):
        part = partition(cloud, 4.0)
        oracle = partition(cloud.copy(), 4.0)
        digests, flat, bounds = part.fill_neighborhoods(1)
        for i, key in enumerate(part.keys()):
            _, canonical = oracle.neighborhood(key, 1)
            assert np.array_equal(flat[bounds[i]:bounds[i + 1]], canonical)
            assert len(digests[i]) == 16

    def test_digests_deterministic_and_content_sensitive(self, rng):
        coords = rng.integers(0, 48, (400, 3))
        a = TilePartition(coords, 16).fill_shells(1)
        b = TilePartition(coords.copy(), 16).fill_shells(1)
        assert a[0] == b[0]
        shuffled = TilePartition(coords[::-1].copy(), 16).fill_shells(1)
        assert a[0] != shuffled[0]  # order is content

    def test_single_point_tile(self):
        pts = np.array([[1.0, 1.0, 1.0]])
        part = TilePartition(pts, 4.0)
        digests, flat, bounds = part.fill_neighborhoods(1)
        assert len(digests) == 1 and len(digests[0]) == 16
        assert np.array_equal(flat[bounds[0]:bounds[1]], [0])

    def test_one_tile_world(self, rng):
        coords = rng.integers(0, 8, (64, 3))
        part = TilePartition(coords, 64)
        oracle = TilePartition(coords.copy(), 64)
        (key,) = part.keys()
        digests, flat, bounds = part.fill_shells(2)
        _, canonical = oracle.shell(key, 2)
        assert np.array_equal(flat[bounds[0]:bounds[1]], canonical)
        ndig, nflat, nbounds = part.fill_neighborhoods(1)
        assert np.array_equal(nflat[nbounds[0]:nbounds[1]],
                              oracle.neighborhood(key, 1)[1])

    def test_empty_slab_equals_absent_neighbor(self, rng):
        """A neighbor whose facing slab is empty must contribute the same
        all-zero digest row an absent neighbor does."""
        side = 16
        center = rng.integers(4, 12, (30, 3))
        alone = TilePartition(center, side)
        key = int(coords_to_keys(np.array([[0, 0, 0]]))[0])
        d_alone, f_alone, b_alone = alone.fill_shells(2, np.array([key]))
        neighbor = rng.integers(4, 12, (25, 3))
        neighbor[:, 0] += side  # interior-only +x neighbor
        both = TilePartition(np.concatenate([center, neighbor]), side)
        d_both, f_both, b_both = both.fill_shells(2, np.array([key]))
        assert d_alone[0] == d_both[0]
        assert np.array_equal(f_alone[b_alone[0]:b_alone[1]],
                              f_both[b_both[0]:b_both[1]])

    def test_absent_query_key_yields_empty_run(self, rng):
        coords = rng.integers(0, 16, (100, 3))
        part = TilePartition(coords, 16)
        absent = int(coords_to_keys(np.array([[40, 40, 40]]))[0])
        digests, flat, bounds = part.fill_shells(1, np.array([absent]))
        assert bounds[1] - bounds[0] == 0
        assert len(digests[0]) == 16

    @pytest.mark.parametrize("dtype", [np.int32, np.int64])
    def test_both_coord_dtypes(self, rng, dtype):
        coords = rng.integers(0, 64, (500, 3)).astype(dtype)
        part = TilePartition(coords, 16)
        oracle = TilePartition(coords.copy(), 16)
        digests, flat, bounds = part.fill_shells(2)
        for i, key in enumerate(part.keys()):
            _, canonical = oracle.shell(key, 2)
            assert np.array_equal(flat[bounds[i]:bounds[i + 1]], canonical)

    def test_dtype_is_part_of_the_digest(self, rng):
        coords = rng.integers(0, 64, (500, 3))
        d32 = TilePartition(coords.astype(np.int32), 16).fill_shells(1)[0]
        d64 = TilePartition(coords.astype(np.int64), 16).fill_shells(1)[0]
        assert d32 != d64

    def test_empty_query_set(self, rng):
        coords = rng.integers(0, 32, (100, 3))
        part = TilePartition(coords, 16)
        digests, flat, bounds = part.fill_shells(
            1, np.empty(0, dtype=np.int64)
        )
        assert digests == [] and len(flat) == 0


class TestContentDigest:
    def test_distinguishes_dtype_shape_and_bytes(self):
        a = np.arange(6, dtype=np.int64)
        assert content_digest(a) != content_digest(a.astype(np.float64))
        assert content_digest(a) != content_digest(a.reshape(2, 3))
        assert content_digest(a) == content_digest(a.copy())

    def test_mixed_parts(self):
        a = np.arange(3)
        assert content_digest(b"x", 1, a) != content_digest(b"x", 2, a)
        assert content_digest(b"x", 1, a) == content_digest(b"x", 1, a.copy())
