"""Tile partitioning: grouping, digests, halos, canonical order."""

import numpy as np
import pytest

from repro.pointcloud.coords import coords_to_keys
from repro.stream.tiles import (
    TilePartition,
    content_digest,
    halo_box,
    partition,
    tile_coords,
)


@pytest.fixture
def cloud(rng):
    return rng.uniform(-10, 10, size=(400, 3))


class TestTileCoords:
    def test_float_floor(self):
        pts = np.array([[0.1, -0.1, 3.9], [4.0, 7.99, -8.0]])
        assert tile_coords(pts, 4.0).tolist() == [[0, -1, 0], [1, 1, -2]]

    def test_integer_floor_divide(self):
        coords = np.array([[0, -1, 15], [16, 31, -16]])
        assert tile_coords(coords, 16).tolist() == [[0, -1, 0], [1, 1, -1]]

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            tile_coords(np.zeros(5), 1.0)


class TestPartition:
    def test_partition_covers_every_point_once(self, cloud):
        part = partition(cloud, 4.0)
        seen = np.concatenate([part.indices(k) for k in part.keys()])
        assert sorted(seen.tolist()) == list(range(len(cloud)))

    def test_indices_keep_original_order_within_tile(self, cloud):
        part = partition(cloud, 4.0)
        for key in part.keys():
            idx = part.indices(key)
            assert np.all(np.diff(idx) > 0)  # stable grouping => ascending

    def test_unoccupied_tile_is_empty(self, cloud):
        part = partition(cloud, 4.0)
        far = coords_to_keys(np.array([[500, 500, 500]]))[0]
        assert len(part.indices(int(far))) == 0

    def test_digest_depends_on_content_and_order(self, rng):
        pts = rng.uniform(0, 5, size=(32, 3))
        a = TilePartition(pts, 100.0)  # single tile
        b = TilePartition(pts.copy(), 100.0)
        (key,) = a.keys()
        assert a.digest(key) == b.digest(key)
        shuffled = TilePartition(pts[::-1].copy(), 100.0)
        assert shuffled.digest(key) != a.digest(key)  # order matters

    def test_unchanged_tiles_digest_equal_across_frames(self, rng):
        """The streaming invariant: points entering/leaving one region do
        not change any other tile's digest or content."""
        frame0 = rng.uniform(0, 40, size=(600, 3))
        extra = rng.uniform(0, 4, size=(30, 3))  # churn confined to one tile
        keep = ~np.all((frame0 >= 0) & (frame0 < 4), axis=1)
        frame1 = np.concatenate([frame0[keep], extra])
        p0, p1 = partition(frame0, 4.0), partition(frame1, 4.0)
        churn_key = coords_to_keys(np.array([[0, 0, 0]]))[0]
        shared = set(p0.keys()) & set(p1.keys()) - {int(churn_key)}
        assert shared  # the scenario is non-trivial
        for key in shared:
            assert p0.digest(key) == p1.digest(key)
            assert np.array_equal(
                frame0[p0.indices(key)], frame1[p1.indices(key)]
            )


class TestNeighborhood:
    def test_halo_indices_ascending_and_complete(self, cloud):
        part = partition(cloud, 4.0)
        tiles = tile_coords(cloud, 4.0)
        for key in list(part.keys())[:5]:
            hal = part.halo_indices(key, 1)
            assert np.all(np.diff(hal) > 0)
            center = tiles[part.indices(key)[0]]
            inside = np.all(np.abs(tiles - center) <= 1, axis=1)
            assert sorted(hal.tolist()) == np.flatnonzero(inside).tolist()

    def test_halo_zero_is_own_tile(self, cloud):
        part = partition(cloud, 4.0)
        for key in list(part.keys())[:5]:
            assert np.array_equal(part.halo_indices(key, 0), part.indices(key))

    def test_neighborhood_digest_covers_every_constituent(self, rng):
        pts = rng.uniform(0, 12, size=(300, 3))
        part = partition(pts, 4.0)
        key = next(iter(part.keys()))
        digest0, canon0 = part.neighborhood(key, 1)
        # Mutating a *neighbor* tile's content must change the digest.
        moved = pts.copy()
        neighbor = part.indices(key)
        victim = canon0[~np.isin(canon0, neighbor)][0]
        moved[victim] += 0.5
        digest1, _ = partition(moved, 4.0).neighborhood(key, 1)
        assert digest0 != digest1

    def test_canonical_concat_matches_halo_set(self, cloud):
        part = partition(cloud, 4.0)
        for key in list(part.keys())[:5]:
            _, canon = part.neighborhood(key, 1)
            assert sorted(canon.tolist()) == part.halo_indices(key, 1).tolist()


class TestHaloBox:
    def test_counts(self):
        assert len(halo_box(0, 3)) == 1
        assert len(halo_box(1, 3)) == 27
        assert len(halo_box(2, 2)) == 25

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            halo_box(-1, 3)


class TestContentDigest:
    def test_distinguishes_dtype_shape_and_bytes(self):
        a = np.arange(6, dtype=np.int64)
        assert content_digest(a) != content_digest(a.astype(np.float64))
        assert content_digest(a) != content_digest(a.reshape(2, 3))
        assert content_digest(a) == content_digest(a.copy())

    def test_mixed_parts(self):
        a = np.arange(3)
        assert content_digest(b"x", 1, a) != content_digest(b"x", 2, a)
        assert content_digest(b"x", 1, a) == content_digest(b"x", 1, a.copy())
