"""Tests for density and workload analysis (Fig. 2 / Fig. 5 inputs)."""

import numpy as np
import pytest

from repro.analysis import (
    CNN_REFERENCES,
    IMAGENET_DENSITY,
    benchmark_workload,
    cloud_density,
    dataset_density,
)


class TestDensity:
    def test_dense_grid_density_one(self):
        import itertools

        pts = np.array(
            list(itertools.product(range(4), repeat=3)), dtype=np.float64
        )
        res = cloud_density(pts + 0.5, voxel_size=1.0)
        assert res.density == pytest.approx(1.0)

    def test_single_plane_density(self):
        # A 10x10 plane in a 10x10x10 grid occupies exactly 1/10.
        xs, ys = np.meshgrid(np.arange(10), np.arange(10))
        pts = np.column_stack(
            [xs.ravel(), ys.ravel(), np.zeros(100)]
        ).astype(np.float64)
        pts = np.vstack([pts, [0.0, 0.0, 9.0]])  # stretch the bbox
        res = cloud_density(pts + 0.5, voxel_size=1.0)
        assert res.density == pytest.approx(101 / 1000)

    def test_every_dataset_sparser_than_imagenet(self):
        for name in ("modelnet40", "s3dis", "semantickitti"):
            res = dataset_density(name, scale=0.15)
            assert res.density < IMAGENET_DENSITY / 10

    def test_outdoor_orders_of_magnitude_sparser(self):
        """Fig. 5: outdoor LiDAR reaches < 1e-3 density; objects ~1e-2."""
        outdoor = dataset_density("semantickitti", scale=0.25)
        objects = dataset_density("modelnet40", scale=1.0)
        assert outdoor.density < 1e-3
        assert objects.density > 1e-3
        assert outdoor.density < objects.density / 10


class TestWorkloads:
    def test_macs_per_point_exceed_cnn_reference(self):
        """Fig. 5 middle: point-cloud nets spend far more MACs per point
        than MobileNetV2's per-pixel budget."""
        stats = benchmark_workload("PointNet++(c)", scale=0.1)
        mobilenet = next(
            r for r in CNN_REFERENCES if r.name == "MobileNetV2"
        )
        assert stats.macs_per_point > mobilenet.macs_per_point * 10

    def test_feature_footprint_exceeds_cnn(self):
        """Fig. 5 right: per-point feature footprint up to ~16 KB, 10-100x
        the CNN per-pixel footprint."""
        stats = benchmark_workload("MinkNet(i)", scale=0.1)
        resnet = next(r for r in CNN_REFERENCES if r.name == "ResNet50")
        assert stats.feature_bytes_per_point > resnet.feature_bytes_per_point * 5

    def test_workload_scales_with_input(self):
        small = benchmark_workload("PointNet++(c)", scale=0.05)
        large = benchmark_workload("PointNet++(c)", scale=0.1)
        assert large.total_macs > small.total_macs
