# Developer entry points for the PointAcc reproduction.
#
#   make test         - the tier-1 suite (everything under tests/ + benchmarks/)
#   make test-fast    - tests/ only, skipping the full-scale benchmark harness
#   make bench        - regenerate every paper table/figure at full scale and
#                       rewrite benchmarks/_results/ (the golden files; the
#                       only target that sets REPRO_BENCH_ARCHIVE=1)
#   make bench-smoke  - fast benchmark smoke at reduced scale (prints tables,
#                       never overwrites the goldens - see benchmarks/conftest.py)
#   make engine-bench - the engine throughput comparison from the CLI
#   make bench-cluster- cluster throughput + persistence smoke at reduced scale
#   make bench-stream - streaming throughput (warm stream vs cold per-frame)
#                       at reduced scale
#   make bench-fleet  - fleet throughput (cross-stream sharing vs per-stream
#                       caching; the benchmark pins its own scale)
#   make bench-workers- worker-process scaling (fleet at workers={0,2,4};
#                       skips below 4 cores; the benchmark pins its own scale)
#   make bench-shell  - shell-assembly + voxelize-compose microbench vs the
#                       per-tile oracle (the benchmark pins its own scale)
#   make bench-compare BASE=a.json CAND=b.json
#                     - diff two bench-* --json payloads; exits 1 on a >10%
#                       throughput regression (scripts/bench_compare.py)

PYTHON      ?= python
PYTHONPATH  := src
SMOKE_SCALE ?= 0.1

export PYTHONPATH

.PHONY: test test-fast bench bench-smoke engine-bench bench-cluster bench-stream bench-fleet bench-workers bench-shell bench-compare

test:
	$(PYTHON) -m pytest -x -q

test-fast:
	$(PYTHON) -m pytest tests -x -q

bench:
	REPRO_BENCH_ARCHIVE=1 $(PYTHON) -m pytest benchmarks -q

bench-smoke:
	REPRO_BENCH_SCALE=$(SMOKE_SCALE) $(PYTHON) -m pytest \
		benchmarks/test_engine_throughput.py \
		benchmarks/test_tab03_asic.py \
		benchmarks/test_abl_topk.py \
		benchmarks/test_abl_dram_timing.py \
		-q

engine-bench:
	$(PYTHON) -m repro bench-engine

bench-cluster:
	REPRO_BENCH_SCALE=$(SMOKE_SCALE) $(PYTHON) -m pytest \
		benchmarks/test_cluster_throughput.py -q

bench-stream:
	REPRO_BENCH_SCALE=$(SMOKE_SCALE) $(PYTHON) -m pytest \
		benchmarks/test_stream_throughput.py -q

bench-fleet:
	$(PYTHON) -m pytest benchmarks/test_fleet_throughput.py -q

bench-workers:
	$(PYTHON) -m pytest benchmarks/test_worker_scaling.py -q -rs

bench-shell:
	$(PYTHON) -m pytest benchmarks/test_shell_assembly.py -q

bench-compare:
	$(PYTHON) scripts/bench_compare.py $(BASE) $(CAND)
