"""Setup shim: the offline environment lacks the `wheel` package that
PEP 517 editable installs require, so `pip install -e .` falls back to this
legacy path (`setup.py develop`). Metadata lives in pyproject.toml."""
from setuptools import setup

setup()
